"""The Quarc all-port switch (Fig. 3b / Fig. 4).

Port inventory per node (N nodes, antipode ``i + N/2``):

========== =============================== ============================
ingress     carries                         legal outputs
========== =============================== ============================
CW_IN       rim traffic travelling CW       eject, CW_OUT
CCW_IN      rim traffic travelling CCW      eject, CCW_OUT
XR_IN       cross traffic turning CW        eject, CW_OUT
XL_IN       cross traffic turning CCW       eject, CCW_OUT
LOC_R       local right-quadrant queue      CW_OUT
LOC_L       local left-quadrant queue       CCW_OUT
LOC_XR      local cross-right queue         XR_OUT
LOC_XL      local cross-left queue          XL_OUT
========== =============================== ============================

Every ingress has at most two legal outputs, hence "the routing logic
inside the Quarc switch is very minimal" (Sec. 2.3): the route function
below is one address comparison plus the broadcast flag.  Each rim output
port arbitrates among exactly three ingress sources -- matching the
paper's OPC master FSM with its three grant states -- and ejection is
per-ingress (all-port), so arriving traffic never queues behind other
ejections.

Broadcast (Sec. 2.5.2): a flit tagged broadcast whose destination is not
the local address is **cloned** -- forwarded on the rim and simultaneously
copied to the local PE ("setting a flag on the ingress multiplexer which
causes it to clone the flits").  Cloning applies to CW, CCW and XL
ingress; the XR stream transits the antipodal switch without a local copy
(its branch starts absorbing one hop later), which is what makes the four
branches' coverage exactly the N-1 other nodes with no duplicates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.noc.packet import BROADCAST, MULTICAST
from repro.noc.router import Router

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.buffers import FlitBuffer
    from repro.noc.packet import Packet
    from repro.noc.ports import OutPort

__all__ = ["QuarcRouter",
           "CW_IN", "CCW_IN", "XR_IN", "XL_IN",
           "LOC_R", "LOC_L", "LOC_XR", "LOC_XL"]

# ingress roles (FlitBuffer.role)
CW_IN, CCW_IN, XR_IN, XL_IN = 0, 1, 2, 3
LOC_R, LOC_L, LOC_XR, LOC_XL = 4, 5, 6, 7

#: Local queues are PE-side memory, modelled deep; switch lanes are small.
LOCAL_QUEUE_DEPTH = 1 << 20


class QuarcRouter(Router):
    """All-port Quarc switch for one node."""

    __slots__ = ("cw_out", "ccw_out", "xr_out", "xl_out",
                 "ej_cw", "ej_ccw", "ej_xr", "ej_xl",
                 "bufs_cw", "bufs_ccw", "bufs_xr", "bufs_xl",
                 "loc_r", "loc_l", "loc_xr", "loc_xl",
                 "clone_disabled")

    def __init__(self, node: int, n: int, buffer_depth: int = 4,
                 vcs: int = 2, clone_disabled: bool = False):
        super().__init__(node, n)
        if vcs != 2:
            raise ValueError("the Quarc switch implements two VC lanes "
                             f"per ingress (got vcs={vcs})")
        #: ablation hook: disable absorb-and-forward (bench_ablation_*)
        self.clone_disabled = clone_disabled

        mk = self.new_buffer
        self.bufs_cw = [mk(buffer_depth, f"cw.vc{v}", CW_IN) for v in (0, 1)]
        self.bufs_ccw = [mk(buffer_depth, f"ccw.vc{v}", CCW_IN)
                         for v in (0, 1)]
        self.bufs_xr = [mk(buffer_depth, f"xr.vc{v}", XR_IN) for v in (0, 1)]
        self.bufs_xl = [mk(buffer_depth, f"xl.vc{v}", XL_IN) for v in (0, 1)]
        self.loc_r = mk(LOCAL_QUEUE_DEPTH, "loc.r", LOC_R)
        self.loc_l = mk(LOCAL_QUEUE_DEPTH, "loc.l", LOC_L)
        self.loc_xr = mk(LOCAL_QUEUE_DEPTH, "loc.xr", LOC_XR)
        self.loc_xl = mk(LOCAL_QUEUE_DEPTH, "loc.xl", LOC_XL)

        dateline_cw = node == n - 1      # CW link n-1 -> 0
        dateline_ccw = node == 0         # CCW link 0 -> n-1
        self.cw_out = self.new_port("cw_out", is_dateline=dateline_cw)
        self.ccw_out = self.new_port("ccw_out", is_dateline=dateline_ccw)
        self.xr_out = self.new_port("xr_out", vc_policy="any")
        self.xl_out = self.new_port("xl_out", vc_policy="any")
        self.ej_cw = self.new_port("ej_cw", vc_policy="any")
        self.ej_ccw = self.new_port("ej_ccw", vc_policy="any")
        self.ej_xr = self.new_port("ej_xr", vc_policy="any")
        self.ej_xl = self.new_port("ej_xl", vc_policy="any")

        for b in self.bufs_cw:
            self.cw_out.add_feeder(b)
            self.ej_cw.add_feeder(b)
        for b in self.bufs_xr:
            self.cw_out.add_feeder(b)
            self.ej_xr.add_feeder(b)
        self.cw_out.add_feeder(self.loc_r)

        for b in self.bufs_ccw:
            self.ccw_out.add_feeder(b)
            self.ej_ccw.add_feeder(b)
        for b in self.bufs_xl:
            self.ccw_out.add_feeder(b)
            self.ej_xl.add_feeder(b)
        self.ccw_out.add_feeder(self.loc_l)

        self.xr_out.add_feeder(self.loc_xr)
        self.xl_out.add_feeder(self.loc_xl)

    # ------------------------------------------------------------------
    def connect(self, routers) -> None:
        """Wire this switch's link output ports to neighbour IPC lanes."""
        n = self.n
        nxt: "QuarcRouter" = routers[(self.node + 1) % n]
        prv: "QuarcRouter" = routers[(self.node - 1) % n]
        anti: "QuarcRouter" = routers[(self.node + n // 2) % n]
        self.cw_out.connect(list(nxt.bufs_cw))
        self.ccw_out.connect(list(prv.bufs_ccw))
        self.xr_out.connect(list(anti.bufs_xr))
        self.xl_out.connect(list(anti.bufs_xl))

    # ------------------------------------------------------------------
    def _hop_distance(self, src: int) -> int:
        """Hops from ``src`` to this node along the base route (for the
        multicast bitstring position, Sec. 2.5.3)."""
        n = self.n
        q = n // 4
        k = (self.node - src) % n
        if k <= q:
            return k
        if k <= 2 * q:
            return 1 + (2 * q - k)
        if k < 3 * q:
            return 1 + (k - 2 * q)
        return n - k

    def _absorb_here(self, pkt: "Packet") -> bool:
        """Should a passing collective flit be cloned to the local PE?"""
        if self.clone_disabled:
            return False
        t = pkt.traffic
        if t == BROADCAST:
            return True
        if t == MULTICAST:
            h = self._hop_distance(pkt.src)
            return bool((pkt.bitstring >> h) & 1)
        return False

    def route_head(self, buf: "FlitBuffer",
                   pkt: "Packet") -> Tuple["OutPort", bool]:
        """The (absence of) Quarc routing logic.

        Local queues forward to their fixed link; network ingress either
        ejects (destination address matches) or forwards straight on,
        cloning collective flits to the PE on the way past.
        """
        role = buf.role
        if role >= LOC_R:                       # local ingress: fixed output
            if role == LOC_R:
                return self.cw_out, False
            if role == LOC_L:
                return self.ccw_out, False
            if role == LOC_XR:
                return self.xr_out, False
            return self.xl_out, False
        me = self.node
        if role == CW_IN:
            if pkt.dst == me:
                return self.ej_cw, False
            return self.cw_out, self._absorb_here(pkt)
        if role == CCW_IN:
            if pkt.dst == me:
                return self.ej_ccw, False
            return self.ccw_out, self._absorb_here(pkt)
        if role == XR_IN:
            if pkt.dst == me:
                return self.ej_xr, False
            # XR streams transit the antipode without a local copy: the
            # cross-right branch starts absorbing one rim hop later.
            return self.cw_out, (pkt.traffic == MULTICAST
                                 and self._absorb_here(pkt))
        # XL_IN
        if pkt.dst == me:
            return self.ej_xl, False
        return self.ccw_out, self._absorb_here(pkt)

    def route_table(self, buf: "FlitBuffer"):
        # Network-ingress cloning reads the traffic class (and the
        # multicast bitstring), so only the fixed-output local queues
        # are tabulable for every traffic class.
        if buf.role >= LOC_R:
            return self._probe_route_table(buf)
        return None

    def unicast_route_table(self, buf: "FlitBuffer"):
        # Unicasts never clone: eject-or-forward is a pure function of
        # the destination for every ingress.
        return self._probe_route_table(buf)
