"""The Spidergon switch -- the paper's baseline (Fig. 3a).

A minimal deterministic-routing Spidergon switch: three network input
ports (CW rim, CCW rim, single cross), **one** local injection port and
**one** local ejection port.  Compared with the Quarc switch this means:

* all locally generated traffic serialises through one injection channel,
  so a message can "block on an occupied injection channel even when
  [its] required network channels are free" (Sec. 2.1);
* all arriving traffic serialises through one ejection channel, which the
  broadcast-by-unicast relay traffic also consumes;
* the cross input needs genuine routing logic (continue CW or CCW toward
  the destination), and broadcast needs header-rewrite/replication logic
  -- both of which cost area in :mod:`repro.hw`.

The replication queue models the switch logic that "create[s] the
required packets on receipt of a broadcast-by-unicast packet"
(Sec. 2.2): regenerated relay packets compete with the PE's own queue for
the rim output ports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.noc.router import Router

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.buffers import FlitBuffer
    from repro.noc.packet import Packet
    from repro.noc.ports import OutPort

__all__ = ["SpidergonRouter",
           "S_CW_IN", "S_CCW_IN", "S_X_IN", "S_LOCAL", "S_REPL"]

# ingress roles (FlitBuffer.role)
S_CW_IN, S_CCW_IN, S_X_IN, S_LOCAL, S_REPL = 0, 1, 2, 3, 4

LOCAL_QUEUE_DEPTH = 1 << 20


class SpidergonRouter(Router):
    """One-port Spidergon switch for one node."""

    __slots__ = ("cw_out", "ccw_out", "x_out", "eject",
                 "bufs_cw", "bufs_ccw", "bufs_x", "local_q", "repl_q")

    def __init__(self, node: int, n: int, buffer_depth: int = 4,
                 vcs: int = 2):
        super().__init__(node, n)
        if n % 2:
            raise ValueError(f"Spidergon needs an even node count (got {n})")
        if vcs != 2:
            raise ValueError("the Spidergon switch models two VC lanes "
                             f"per ingress (got vcs={vcs})")

        mk = self.new_buffer
        self.bufs_cw = [mk(buffer_depth, f"cw.vc{v}", S_CW_IN)
                        for v in (0, 1)]
        self.bufs_ccw = [mk(buffer_depth, f"ccw.vc{v}", S_CCW_IN)
                         for v in (0, 1)]
        self.bufs_x = [mk(buffer_depth, f"x.vc{v}", S_X_IN) for v in (0, 1)]
        self.local_q = mk(LOCAL_QUEUE_DEPTH, "loc", S_LOCAL)
        self.repl_q = mk(LOCAL_QUEUE_DEPTH, "repl", S_REPL)

        self.cw_out = self.new_port("cw_out", is_dateline=(node == n - 1))
        self.ccw_out = self.new_port("ccw_out", is_dateline=(node == 0))
        self.x_out = self.new_port("x_out", vc_policy="any")
        self.eject = self.new_port("eject", vc_policy="any")

        # replication before local: the switch's own broadcast logic gets
        # priority over fresh PE traffic at the rim outputs (round-robin
        # still rotates, so neither starves)
        for b in self.bufs_cw:
            self.cw_out.add_feeder(b)
            self.eject.add_feeder(b)
        for b in self.bufs_x:
            self.cw_out.add_feeder(b)
            self.ccw_out.add_feeder(b)
            self.eject.add_feeder(b)
        self.cw_out.add_feeder(self.repl_q)
        self.cw_out.add_feeder(self.local_q)
        for b in self.bufs_ccw:
            self.ccw_out.add_feeder(b)
            self.eject.add_feeder(b)
        self.ccw_out.add_feeder(self.repl_q)
        self.ccw_out.add_feeder(self.local_q)
        self.x_out.add_feeder(self.local_q)

    # ------------------------------------------------------------------
    def connect(self, routers) -> None:
        """Wire link outputs to neighbour IPC lanes."""
        n = self.n
        nxt: "SpidergonRouter" = routers[(self.node + 1) % n]
        prv: "SpidergonRouter" = routers[(self.node - 1) % n]
        anti: "SpidergonRouter" = routers[(self.node + n // 2) % n]
        self.cw_out.connect(list(nxt.bufs_cw))
        self.ccw_out.connect(list(prv.bufs_ccw))
        self.x_out.connect(list(anti.bufs_x))

    # ------------------------------------------------------------------
    def route_head(self, buf: "FlitBuffer",
                   pkt: "Packet") -> Tuple["OutPort", bool]:
        """Across-first deterministic routing (Sec. 2.1).

        Unlike the Quarc this *is* a routing computation: the local port
        compares rim distance against N/4 to choose rim vs spoke, and the
        cross input picks the shorter rim direction -- the "more complex
        logic" the cost analysis charges the Spidergon switch for.
        """
        me = self.node
        n = self.n
        role = buf.role
        if role == S_LOCAL:
            k = (pkt.dst - me) % n
            if 4 * min(k, n - k) > n:
                return self.x_out, False
            return (self.cw_out if k <= n - k else self.ccw_out), False
        if role == S_REPL:
            k = (pkt.dst - me) % n
            return (self.cw_out if k <= n - k else self.ccw_out), False
        if pkt.dst == me:
            return self.eject, False
        if role == S_CW_IN:
            return self.cw_out, False
        if role == S_CCW_IN:
            return self.ccw_out, False
        # cross ingress: finish along the shorter rim direction
        k = (pkt.dst - me) % n
        return (self.cw_out if k <= n - k else self.ccw_out), False

    def route_table(self, buf: "FlitBuffer"):
        """Across-first routing reads only (ingress role, destination);
        relay segments route exactly like unicasts, so the table holds
        for every traffic class."""
        return self._probe_route_table(buf)
