"""Bit-exact Quarc flit formats (paper Fig. 7).

"For a Quarc NoC employing flit size of 34 bits various flit types
composing a packet are depicted in Fig. 7.  Bits [1:0] denote the flit
types namely: header, body and tail.  And the last 3 bits of header flits
represent traffic types" (Sec. 2.6).

Concretely, for a payload width W (16/32/64 in the paper's synthesis
sweep; the wire flit is W+2 bits including the type field):

=========== =====================================================
bits        field
=========== =====================================================
[1:0]       flit type: 00 header, 01 body, 10 tail, 11 head+tail
header flits additionally:
[7:2]       destination address (6 bits -- "network size may be up
            to 64 nodes")
[13:8]      source address
[21:14]     packet length in flits (M, up to 255)
[W-2:22]    reserved / first bitstring bits (multicast)
[W+1:W-1]   traffic type: 000 unicast, 001 multicast, 010
            broadcast, 011 relay (broadcast-by-unicast segment)
body/tail:
[W+1:2]     payload
=========== =====================================================

Multicast bitstrings that do not fit in the header's reserved field spill
into **header-extension flits** (type ``header`` with the ``EXT`` traffic
code), the paper's "multi flit headers" option for larger networks.

These encoders are *not* used by the cycle simulator (which keeps fields
unpacked for speed); they exist so the packet format is a tested, exact
artefact, and the property-based suite round-trips packets through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.noc.packet import BROADCAST, MULTICAST, RELAY, UNICAST, Packet

__all__ = [
    "FLIT_HEADER", "FLIT_BODY", "FLIT_TAIL", "FLIT_SINGLE", "TT_EXT",
    "FlitCodec", "DecodedHeader", "DecodedFlit",
]

FLIT_HEADER = 0b00
FLIT_BODY = 0b01
FLIT_TAIL = 0b10
FLIT_SINGLE = 0b11

#: traffic-type code for header-extension flits (multi-flit headers)
TT_EXT = 0b111

_ADDR_BITS = 6
_LEN_BITS = 8
_TT_BITS = 3


@dataclass(frozen=True)
class DecodedHeader:
    """Fields recovered from a header flit (+ extensions)."""

    dst: int
    src: int
    length: int
    traffic: int
    bitstring: int = 0


@dataclass(frozen=True)
class DecodedFlit:
    """One decoded flit: its type and (for non-headers) the payload."""

    ftype: int
    payload: int = 0
    header: Optional[DecodedHeader] = None


class FlitCodec:
    """Encode/decode packets to flit words for a given payload width.

    Parameters
    ----------
    width:
        Payload width W in bits (>= 24 so the header fields fit); the
        paper's switch versions use 16/32/64 -- width 16 is supported for
        *data* flits but headers then need W >= 24, so the codec requires
        24; the hardware cost model still sweeps raw datapath widths.
    """

    def __init__(self, width: int = 32):
        if width < 24:
            raise ValueError(
                f"header fields need a payload width >= 24 bits (got {width})")
        self.width = width
        self.flit_bits = width + 2
        self._payload_mask = (1 << width) - 1
        self._tt_shift = self.flit_bits - _TT_BITS
        # reserved field available for inline multicast bits
        self._resv_lo = 2 + _ADDR_BITS + _ADDR_BITS + _LEN_BITS   # = 22
        self._resv_bits = self._tt_shift - self._resv_lo

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode_header(self, dst: int, src: int, length: int, traffic: int,
                      bitstring: int = 0) -> List[int]:
        """Header flit (+ extension flits when the bitstring spills)."""
        for name, val, bits in (("dst", dst, _ADDR_BITS),
                                ("src", src, _ADDR_BITS),
                                ("length", length, _LEN_BITS),
                                ("traffic", traffic, _TT_BITS)):
            if not 0 <= val < (1 << bits):
                raise ValueError(f"{name}={val} exceeds {bits} bits")
        if bitstring < 0:
            raise ValueError("bitstring must be non-negative")
        ftype = FLIT_SINGLE if length == 1 else FLIT_HEADER
        word = (ftype
                | (dst << 2)
                | (src << (2 + _ADDR_BITS))
                | (length << (2 + 2 * _ADDR_BITS))
                | ((bitstring & ((1 << self._resv_bits) - 1)) << self._resv_lo)
                | (traffic << self._tt_shift))
        flits = [word]
        rest = bitstring >> self._resv_bits
        ext_payload_bits = self._tt_shift - 2
        while rest:
            ext = (FLIT_HEADER
                   | ((rest & ((1 << ext_payload_bits) - 1)) << 2)
                   | (TT_EXT << self._tt_shift))
            flits.append(ext)
            rest >>= ext_payload_bits
        return flits

    def encode_body(self, payload: int) -> int:
        return FLIT_BODY | ((payload & self._payload_mask) << 2)

    def encode_tail(self, payload: int) -> int:
        return FLIT_TAIL | ((payload & self._payload_mask) << 2)

    def encode_packet(self, pkt: Packet,
                      payloads: Optional[List[int]] = None) -> List[int]:
        """Whole packet to wire flits.

        ``payloads`` supplies body/tail payload words (zero-filled when
        omitted).  The flit count can exceed ``pkt.size`` when multicast
        bitstrings force header extensions -- exactly the overhead the
        paper's multi-flit-header remark concedes.
        """
        flits = self.encode_header(pkt.dst, pkt.src, pkt.size,
                                   pkt.traffic, pkt.bitstring)
        n_data = pkt.size - 1
        data = list(payloads) if payloads is not None else [0] * n_data
        if len(data) != n_data:
            raise ValueError(
                f"expected {n_data} payload words, got {len(data)}")
        for i, word in enumerate(data):
            if i == n_data - 1:
                flits.append(self.encode_tail(word))
            else:
                flits.append(self.encode_body(word))
        return flits

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def flit_type(self, word: int) -> int:
        return word & 0b11

    def decode_flit(self, word: int) -> DecodedFlit:
        if word < 0 or word >> self.flit_bits:
            raise ValueError(
                f"flit word does not fit in {self.flit_bits} bits")
        ftype = word & 0b11
        if ftype in (FLIT_BODY, FLIT_TAIL):
            return DecodedFlit(ftype, payload=(word >> 2) & self._payload_mask)
        return DecodedFlit(ftype, header=self._decode_header_word(word))

    def _decode_header_word(self, word: int) -> DecodedHeader:
        dst = (word >> 2) & ((1 << _ADDR_BITS) - 1)
        src = (word >> (2 + _ADDR_BITS)) & ((1 << _ADDR_BITS) - 1)
        length = (word >> (2 + 2 * _ADDR_BITS)) & ((1 << _LEN_BITS) - 1)
        traffic = (word >> self._tt_shift) & ((1 << _TT_BITS) - 1)
        bits = (word >> self._resv_lo) & ((1 << self._resv_bits) - 1)
        return DecodedHeader(dst, src, length, traffic, bits)

    def decode_packet(self, flits: List[int]) -> Tuple[DecodedHeader,
                                                       List[int]]:
        """Wire flits back to (header, payload words).

        Validates framing: exactly one leading header (+ extensions), a
        tail flit at the end, bodies in between.
        """
        if not flits:
            raise ValueError("empty flit stream")
        first = self.decode_flit(flits[0])
        if first.ftype not in (FLIT_HEADER, FLIT_SINGLE):
            raise ValueError("packet must start with a header flit")
        hdr = first.header
        assert hdr is not None
        idx = 1
        bitstring = hdr.bitstring
        shift = self._resv_bits
        ext_payload_bits = self._tt_shift - 2
        while idx < len(flits):
            f = self.decode_flit(flits[idx])
            if (f.ftype == FLIT_HEADER and f.header is not None
                    and f.header.traffic == TT_EXT):
                raw = flits[idx]
                chunk = (raw >> 2) & ((1 << ext_payload_bits) - 1)
                bitstring |= chunk << shift
                shift += ext_payload_bits
                idx += 1
            else:
                break
        hdr = DecodedHeader(hdr.dst, hdr.src, hdr.length, hdr.traffic,
                            bitstring)
        payloads: List[int] = []
        expected_data = hdr.length - 1
        for j in range(idx, len(flits)):
            f = self.decode_flit(flits[j])
            is_last = j == len(flits) - 1
            if is_last:
                if f.ftype != FLIT_TAIL:
                    raise ValueError("packet must end with a tail flit")
            elif f.ftype != FLIT_BODY:
                raise ValueError(f"unexpected flit type {f.ftype} mid-packet")
            payloads.append(f.payload)
        if hdr.length == 1:
            if first.ftype != FLIT_SINGLE or payloads:
                raise ValueError(
                    "1-flit packet must be a single head+tail flit")
        elif len(payloads) != expected_data:
            raise ValueError(
                f"header says {expected_data} data flits, got {len(payloads)}")
        return hdr, payloads

    @staticmethod
    def traffic_name(code: int) -> str:
        return {UNICAST: "unicast", MULTICAST: "multicast",
                BROADCAST: "broadcast", RELAY: "relay",
                TT_EXT: "header-ext"}.get(code, f"reserved({code})")
