"""The scenario registry: compact spec strings -> workload components.

A *scenario* is a named spatial destination pattern or temporal arrival
model, selectable from a one-line spec string::

    uniform                      hotspot:node=0,p=0.2
    transpose                    bursty:on=0.3,len=8
    bit-complement               trace:path=run.jsonl
    neighbour                    bernoulli
    permutation:seed=3

Grammar: ``name[:key=value[,key=value...]]``.  Values are coerced to
int, float or bool when they look like one, else kept as strings (so
``path=run.jsonl`` survives).  Names and keys are case-insensitive;
common spelling aliases are registered (``neighbor``,
``bit_complement``/``bitcomp``, ``poisson``).

The registry is discoverable (:func:`list_scenarios` powers ``repro
scenarios list``) and extensible (:func:`register_scenario`), in the
style of rule registries in validation engines: adding a scenario here
makes it reachable from every layer above -- ``WorkloadSpec``,
``SimulationSession``, the CLI flags, sweep grids and benchmarks -- with
no further wiring.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.traffic.arrival import (BernoulliInjector, BurstyInjector,
                                   TraceInjector)
from repro.traffic.generators import (BitComplementPattern,
                                      DestinationPattern, DirectoryPattern,
                                      HotspotPattern, NeighbourPattern,
                                      PermutationPattern, TransposePattern,
                                      UniformPattern)
from repro.workloads.trace import Trace

__all__ = ["ScenarioInfo", "ResolvedArrival", "ArrivalModel", "parse_spec",
           "format_spec", "list_scenarios", "register_scenario",
           "get_scenario", "check_spec", "resolve_pattern",
           "resolve_arrival", "resolve_workload", "check_workload",
           "parse_classes", "scenario_table"]

PATTERN = "pattern"
ARRIVAL = "arrival"
WORKLOAD = "workload"


@dataclass(frozen=True)
class ScenarioInfo:
    """Registry metadata for one named scenario."""

    name: str
    kind: str                       # PATTERN | ARRIVAL
    summary: str
    params: Dict[str, str] = field(default_factory=dict)  # key -> doc
    required: Tuple[str, ...] = ()
    aliases: Tuple[str, ...] = ()
    #: params whose values stay raw strings (never int/float/bool
    #: coerced), e.g. file paths that merely *look* numeric ("1e5")
    string_params: Tuple[str, ...] = ()
    #: pattern: build(n, **params) -> DestinationPattern
    #: arrival: build(**params) -> ResolvedArrival
    build: Callable = None          # type: ignore[assignment]

    def spec_example(self) -> str:
        if not self.params:
            return self.name
        return self.name + ":" + ",".join(
            f"{k}=<{k}>" for k in self.params)


class ResolvedArrival:
    """A resolved temporal model: one injector factory for all nodes.

    Callable as ``model(node, rate, rng) -> injector`` -- the signature
    :class:`~repro.traffic.mix.TrafficMix` expects; the injectors it
    builds implement the :class:`~repro.traffic.arrival.ArrivalModel`
    protocol.  ``nodes`` is the node count the model is pinned to
    (trace replay), or ``None`` for size-agnostic stochastic models.
    ``reactive`` mirrors the protocol's capability flag at the factory
    level, so drivers can classify a mix before building injectors.
    """

    def __init__(self, name: str, spec: str,
                 make: Callable[[int, float, random.Random], object],
                 nodes: Optional[int] = None, reactive: bool = False):
        self.name = name
        self.spec = spec
        self.nodes = nodes
        self.reactive = reactive
        self._make = make
        #: v2-trace replay payload (per-node event lists); when set,
        #: :class:`~repro.traffic.mix.TrafficMix` bypasses the injector
        #: factory and replays the recorded messages verbatim
        self.replay = None

    def __call__(self, node: int, rate: float,
                 rng: random.Random) -> object:
        return self._make(node, rate, rng)

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return f"<ResolvedArrival {self.spec!r}>"


#: Deprecated alias: this factory class was named ``ArrivalModel``
#: before the protocol of the same name was extracted into
#: :mod:`repro.traffic.arrival`; the old import path keeps working.
ArrivalModel = ResolvedArrival


_REGISTRY: Dict[str, ScenarioInfo] = {}
_ALIASES: Dict[str, str] = {}


def register_scenario(info: ScenarioInfo) -> ScenarioInfo:
    """Add a scenario (and its aliases) to the registry.

    Lookup is case-insensitive, so names and aliases are stored
    lower-cased -- a scenario registered as ``"AllReduce"`` is reachable
    as ``"allreduce"`` (and any other casing)."""
    for key in (info.name,) + info.aliases:
        key = key.lower()
        if key in _REGISTRY or key in _ALIASES:
            raise ValueError(f"scenario name {key!r} already registered")
    _REGISTRY[info.name.lower()] = info
    for alias in info.aliases:
        _ALIASES[alias.lower()] = info.name.lower()
    return info


def list_scenarios(kind: Optional[str] = None) -> List[ScenarioInfo]:
    """All registered scenarios, optionally filtered by kind."""
    infos = [i for i in _REGISTRY.values()
             if kind is None or i.kind == kind]
    return sorted(infos, key=lambda i: (i.kind, i.name))


def get_scenario(name: str, kind: Optional[str] = None) -> ScenarioInfo:
    """Look up one scenario by canonical name or alias."""
    key = name.lower()
    info = _REGISTRY.get(key) or _REGISTRY.get(_ALIASES.get(key, ""))
    if info is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown scenario {name!r}; known: {known}")
    if kind is not None and info.kind != kind:
        raise ValueError(
            f"scenario {info.name!r} is a {info.kind} scenario, "
            f"not usable as a {kind}")
    return info


# ----------------------------------------------------------------------
# spec-string grammar
# ----------------------------------------------------------------------
def _coerce(text: str) -> object:
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _split_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:key=value,..."`` into ``(name, raw-string params)``.

    Note the grammar's one hard limit: ``,`` separates parameters, so
    values (e.g. trace paths) cannot contain commas.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty scenario spec {spec!r}")
    name, sep, rest = spec.strip().partition(":")
    name = name.strip().lower()
    if not name:
        raise ValueError(f"scenario spec {spec!r} has no name")
    params: Dict[str, str] = {}
    if sep and rest.strip():
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip().lower()
            if not eq or not key or not value.strip():
                raise ValueError(
                    f"bad parameter {item!r} in scenario spec {spec!r}; "
                    f"expected key=value")
            if key in params:
                raise ValueError(
                    f"duplicate parameter {key!r} in scenario spec "
                    f"{spec!r}")
            params[key] = value.strip()
    return name, params


def parse_spec(spec: str) -> Tuple[str, Dict[str, object]]:
    """Split ``"name:key=value,..."`` into ``(name, params)``.

    Values are coerced (int/float/bool where unambiguous).  Raises
    :class:`ValueError` on empty names, missing ``=`` or duplicate keys.
    """
    name, raw = _split_spec(spec)
    return name, {k: _coerce(v) for k, v in raw.items()}


def _format_value(value: object) -> str:
    """Render one parameter value so :func:`parse_spec` coerces it back
    to an equal value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    text = repr(value) if isinstance(value, float) else str(value)
    if _coerce(text) != value:
        raise ValueError(
            f"parameter value {value!r} does not survive the spec "
            f"grammar (renders as {text!r})")
    return text


def format_spec(name: str, params: Optional[Dict[str, object]] = None
                ) -> str:
    """The canonical spec string for ``(name, params)`` -- the inverse
    of :func:`parse_spec`, up to key order and whitespace.

    Round-trip invariant (property-tested in
    ``tests/test_workload_properties.py``)::

        parse_spec(format_spec(*parse_spec(s))) == parse_spec(s)

    Raises :class:`ValueError` for names/keys/values the grammar cannot
    carry (empty names, ``:``/``,``/``=`` inside tokens, values whose
    text form coerces to a different value -- e.g. the *string* "1e5",
    which would come back as a float; keep those in ``string_params``
    scenarios and pass the string to the resolver directly).
    """
    name = str(name).strip().lower()
    if not name or any(c in name for c in ":,="):
        raise ValueError(f"scenario name {name!r} does not fit the "
                         f"spec grammar")
    if not params:
        return name
    parts = []
    for key, value in params.items():
        key = str(key).strip().lower()
        if not key or any(c in key for c in ":,="):
            raise ValueError(f"parameter key {key!r} does not fit the "
                             f"spec grammar")
        text = _format_value(value)
        if not text.strip() or any(c in text for c in ",="):
            raise ValueError(
                f"parameter value {value!r} does not fit the spec "
                f"grammar (the ',' separator and '=' are reserved)")
        parts.append(f"{key}={text}")
    return name + ":" + ",".join(parts)


def _resolve(spec: str, kind: str
             ) -> Tuple[ScenarioInfo, Dict[str, object]]:
    """Look up + validate a spec and coerce its parameter values,
    honouring the scenario's ``string_params`` (kept raw)."""
    name, raw = _split_spec(spec)
    info = get_scenario(name, kind)
    unknown = set(raw) - set(info.params)
    if unknown:
        accepted = ", ".join(sorted(info.params)) or "(none)"
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for scenario "
            f"{info.name!r}; accepted: {accepted}")
    missing = [k for k in info.required if k not in raw]
    if missing:
        raise ValueError(
            f"scenario {info.name!r} requires parameter(s) {missing} "
            f"(e.g. {info.spec_example()!r})")
    params = {k: (v if k in info.string_params else _coerce(v))
              for k, v in raw.items()}
    return info, params


def check_spec(spec: str, kind: str) -> ScenarioInfo:
    """Validate a spec string (name, kind, parameter names) without
    building anything -- no file access, no network size needed.  Used
    by :class:`~repro.traffic.workload.WorkloadSpec` for early errors."""
    return _resolve(spec, kind)[0]


def resolve_pattern(spec: str, n: int) -> DestinationPattern:
    """Build the destination pattern a spec string names, for ``n`` nodes."""
    info, params = _resolve(spec, PATTERN)
    return info.build(n, **params)


def resolve_arrival(spec: str) -> ResolvedArrival:
    """Build the arrival model a spec string names."""
    info, params = _resolve(spec, ARRIVAL)
    model = info.build(**params)
    model.spec = spec.strip()
    return model


# ----------------------------------------------------------------------
# multi-class workload specs
# ----------------------------------------------------------------------
def _extend_spec(spec: str, item: str) -> str:
    """Append one ``key=value`` parameter to a pattern/arrival spec."""
    return spec + ("," if ":" in spec else ":") + item


def parse_classes(body: str, spec: str = ""):
    """Parse the body of a ``classes:`` workload spec into
    :class:`~repro.traffic.mix.TrafficClass` instances.

    Grammar (``;`` separates classes, ``,`` separates items)::

        <name>=<head>[,key=value...][;<name2>=...]

    where ``head`` is ``broadcast`` or a spatial pattern name (with its
    first parameter attached, e.g. ``hotspot:node=0``).  The reserved
    class-level keys are ``len``/``msg_len`` (flits, required), ``rate``
    (messages/node/cycle, required), ``cast`` and ``arrival``.  Any
    other ``key=value`` item extends the pattern spec -- or, once an
    ``arrival=`` item has appeared, the arrival spec (so
    ``arrival=bursty:on=0.3,len=8`` reads ``len`` as the *burst* length;
    put the class ``len`` before ``arrival=``).

    Example (the paper's cache-coherence mix, Sec. 2.2)::

        inv=broadcast,len=2,rate=0.002;fill=hotspot:node=0,len=10,rate=0.012
    """
    from repro.traffic.mix import TrafficClass
    label = spec or f"classes:{body}"
    chunks = [c.strip() for c in body.split(";") if c.strip()]
    if not chunks:
        raise ValueError(f"workload spec {label!r} declares no classes")
    classes = []
    names = set()
    for chunk in chunks:
        items = [it.strip() for it in chunk.split(",")]
        name, eq, head = items[0].partition("=")
        name = name.strip().lower()
        head = head.strip()
        if not eq or not name or not head:
            raise ValueError(
                f"bad class {items[0]!r} in workload spec {label!r}; "
                f"expected <name>=<broadcast-or-pattern>")
        if name in names:
            raise ValueError(
                f"duplicate class {name!r} in workload spec {label!r}")
        names.add(name)
        cast = "broadcast" if head.lower() == "broadcast" else "unicast"
        pattern = "uniform" if cast == "broadcast" else head
        arrival = "bernoulli"
        rate = msg_len = None
        seen_arrival = False
        for item in items[1:]:
            key, eq, value = item.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if not eq or not key or not value:
                raise ValueError(
                    f"bad parameter {item!r} for class {name!r} in "
                    f"workload spec {label!r}; expected key=value")
            if seen_arrival:
                arrival = _extend_spec(arrival, item)
            elif key in ("len", "msg_len"):
                msg_len = _coerce(value)
            elif key == "rate":
                rate = _coerce(value)
            elif key == "cast":
                cast = value.lower()
            elif key == "arrival":
                arrival = value
                seen_arrival = True
            else:
                if cast == "broadcast" and pattern == "uniform":
                    raise ValueError(
                        f"class {name!r} in workload spec {label!r}: "
                        f"parameter {item!r} has no pattern to attach to "
                        f"(broadcast classes take no pattern)")
                pattern = _extend_spec(pattern, item)
        if rate is None or msg_len is None:
            raise ValueError(
                f"class {name!r} in workload spec {label!r} needs both "
                f"rate= and len= (got rate={rate!r}, len={msg_len!r})")
        if not isinstance(msg_len, int) or isinstance(msg_len, bool):
            raise ValueError(
                f"class {name!r} in workload spec {label!r}: len must "
                f"be an integer flit count (got {msg_len!r})")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            raise ValueError(
                f"class {name!r} in workload spec {label!r}: rate must "
                f"be a number (got {rate!r})")
        if cast == "unicast":
            check_spec(pattern, PATTERN)
        check_spec(arrival, ARRIVAL)
        classes.append(TrafficClass(name=name, rate=float(rate),
                                    msg_len=msg_len, pattern=pattern,
                                    arrival=arrival, cast=cast))
    return classes


def _split_workload(spec: str):
    """Split a workload spec into ``(name, body)`` without the normal
    ``key=value`` parsing (the ``classes:`` body has its own grammar)."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty workload spec {spec!r}")
    name, _, body = spec.strip().partition(":")
    name = name.strip().lower()
    if not name:
        raise ValueError(f"workload spec {spec!r} has no name")
    return name, body.strip()


def check_workload(spec: str) -> ScenarioInfo:
    """Validate a workload spec string (name, kind, parameters -- and
    for raw ``classes:`` specs the full class grammar) without needing a
    network size.  Used by
    :class:`~repro.traffic.workload.WorkloadSpec` for early errors."""
    name, body = _split_workload(spec)
    if name == "classes":
        parse_classes(body, spec)
        return get_scenario("classes", WORKLOAD)
    return _resolve(spec, WORKLOAD)[0]


def resolve_workload(spec: str, n: int):
    """Build the :class:`~repro.traffic.mix.TrafficClass` list a
    workload spec names, for an ``n``-node network.

    ``classes:<grammar>`` builds the declared mix verbatim; any other
    name is looked up in the registry's application-workload scenarios
    (``cache_coherence``, ``allreduce``, ...), whose ``build(n,
    **params)`` returns either a plain class list or a
    :class:`~repro.workloads.closedloop.ClosedLoopWorkload` bundle
    (passed through as-is for the session to wire an engine around).
    """
    from repro.workloads.closedloop import ClosedLoopWorkload
    name, body = _split_workload(spec)
    if name == "classes":
        return parse_classes(body, spec)
    info, params = _resolve(spec, WORKLOAD)
    built = info.build(n, **params)
    if isinstance(built, ClosedLoopWorkload):
        return built
    classes = list(built)
    if not classes:
        raise ValueError(f"workload {info.name!r} built no classes")
    return classes


def scenario_table() -> str:
    """A human-readable listing for ``repro scenarios list``."""
    lines = []
    for kind, title in ((PATTERN, "Spatial destination patterns"),
                        (ARRIVAL, "Temporal arrival models"),
                        (WORKLOAD, "Application workloads "
                                   "(multi-class mixes)")):
        lines.append(f"{title}:")
        for info in list_scenarios(kind):
            alias = (f"  (aliases: {', '.join(info.aliases)})"
                     if info.aliases else "")
            lines.append(f"  {info.name:<16s} {info.summary}{alias}")
            for key, doc in info.params.items():
                req = " [required]" if key in info.required else ""
                lines.append(f"      {key:<12s} {doc}{req}")
        lines.append("")
    lines.append("Spec grammar: name[:key=value[,key=value...]], e.g. "
                 "'hotspot:node=0,p=0.2' or 'bursty:on=0.3,len=8'.")
    lines.append("Multi-class grammar: classes:<name>=<broadcast|pattern>"
                 ",len=<flits>,rate=<r>[,arrival=...][;<name2>=...], "
                 "e.g. 'classes:inv=broadcast,len=2,rate=0.002;"
                 "fill=uniform,len=10,rate=0.012'.")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# built-in scenarios
# ----------------------------------------------------------------------
def _build_uniform(n: int) -> DestinationPattern:
    return UniformPattern(n)


def _build_hotspot(n: int, node: int = 0, p: float = 0.2
                   ) -> DestinationPattern:
    return HotspotPattern(n, hotspot=node, p=p)


def _build_transpose(n: int) -> DestinationPattern:
    return TransposePattern(n)


def _build_bit_complement(n: int) -> DestinationPattern:
    return BitComplementPattern(n)


def _build_neighbour(n: int, offset: int = 1) -> DestinationPattern:
    return NeighbourPattern(n, offset=offset)


def _build_permutation(n: int, seed: int = 0) -> DestinationPattern:
    return PermutationPattern(n, seed=seed)


def _build_directory(n: int, quadrants: int = 4, local: float = 0.5
                     ) -> DestinationPattern:
    return DirectoryPattern(n, quadrants=quadrants, local=local)


def _build_bernoulli() -> ResolvedArrival:
    return ResolvedArrival(
        "bernoulli", "bernoulli",
        lambda node, rate, rng: BernoulliInjector(rate, rng))


def _build_bursty(on: float = 0.3, **kw) -> ResolvedArrival:
    burst_len = kw.pop("len", 8)
    if kw:
        raise ValueError(f"unknown bursty parameter(s) {sorted(kw)}")
    return ResolvedArrival(
        "bursty", f"bursty:on={on},len={burst_len}",
        lambda node, rate, rng: BurstyInjector(
            rate, rng, on_frac=on, burst_len=burst_len))


def _build_closedloop(window: int = 4) -> ResolvedArrival:
    # Imported lazily: closedloop imports TrafficClass from the mix
    # module, which imports this registry lazily in turn; resolving at
    # call time keeps the module graph acyclic.
    from repro.workloads.closedloop import ClosedLoopSource
    if window < 1:
        raise ValueError(
            f"closedloop window must be >= 1 outstanding message "
            f"(got {window})")
    return ResolvedArrival(
        "closedloop", f"closedloop:window={window}",
        lambda node, rate, rng: ClosedLoopSource(rate, rng, window=window),
        reactive=True)


def _build_trace(path: str) -> ResolvedArrival:
    trace = Trace.load(str(path))
    per_node = trace.per_node()
    model = ResolvedArrival(
        "trace", f"trace:path={path}",
        lambda node, rate, rng: TraceInjector(per_node[node]),
        nodes=trace.n)
    if trace.version == 2:
        # full per-event payloads: TrafficMix switches to verbatim
        # replay (seed-independent; supports multi-class bursts where
        # one node injects several messages in one cycle)
        model.replay = trace.per_node_events()
    return model


register_scenario(ScenarioInfo(
    name="uniform", kind=PATTERN,
    summary="uniformly random destination != source (the paper's workload)",
    build=_build_uniform))
register_scenario(ScenarioInfo(
    name="hotspot", kind=PATTERN,
    summary="probability p of targeting one hot node, else uniform",
    params={"node": "the hotspot node id (default 0)",
            "p": "probability of targeting it (default 0.2)"},
    build=_build_hotspot))
register_scenario(ScenarioInfo(
    name="transpose", kind=PATTERN,
    summary="bit-transpose adversarial pattern (power-of-two N)",
    build=_build_transpose))
register_scenario(ScenarioInfo(
    name="bit-complement", kind=PATTERN,
    summary="dst = ~src, every message crosses the centre (power-of-two N)",
    aliases=("bit_complement", "bitcomp"),
    build=_build_bit_complement))
register_scenario(ScenarioInfo(
    name="neighbour", kind=PATTERN,
    summary="dst = src+offset mod N, pure nearest-neighbour rim traffic",
    params={"offset": "ring offset, +1 downstream / -1 upstream "
                      "(default 1)"},
    aliases=("neighbor",),
    build=_build_neighbour))
register_scenario(ScenarioInfo(
    name="permutation", kind=PATTERN,
    summary="a fixed random derangement: each node targets one partner",
    params={"seed": "derangement seed (default 0)"},
    build=_build_permutation))
register_scenario(ScenarioInfo(
    name="directory", kind=PATTERN,
    summary="directory-home locality: probability `local` of a home in "
            "the source's NUMA quadrant, else a remote quadrant",
    params={"quadrants": "contiguous home arcs the ring splits into "
                         "(default 4)",
            "local": "probability of an own-quadrant home (default 0.5)"},
    build=_build_directory))

register_scenario(ScenarioInfo(
    name="bernoulli", kind=ARRIVAL,
    summary="independent Bernoulli(rate) arrivals per node (the default)",
    aliases=("poisson",),
    build=_build_bernoulli))
register_scenario(ScenarioInfo(
    name="bursty", kind=ARRIVAL,
    summary="on/off MMPP: geometric bursts at elevated rate, then silence",
    params={"on": "stationary ON fraction in (0,1) (default 0.3)",
            "len": "mean burst length in cycles (default 8)"},
    build=_build_bursty))
register_scenario(ScenarioInfo(
    name="closedloop", kind=ARRIVAL,
    summary="reactive closed-loop source: stalls while `window` "
            "requests are in flight (needs a closed-loop workload to "
            "feed completions back)",
    params={"window": "max outstanding requests per node (default 4)"},
    aliases=("closed-loop", "closed_loop"),
    build=_build_closedloop))
register_scenario(ScenarioInfo(
    name="trace", kind=ARRIVAL,
    summary="deterministic replay of a recorded JSONL arrival trace "
            "(v2 traces replay destinations/classes too)",
    params={"path": "trace file written by 'repro trace record' "
                    "(commas cannot appear in the path)"},
    required=("path",),
    string_params=("path",),
    build=_build_trace))

register_scenario(ScenarioInfo(
    name="classes", kind=WORKLOAD,
    summary="a raw multi-class mix declared inline (see the "
            "multi-class grammar below)",
    params={"<name>": "one chunk per class: <name>=<broadcast|pattern>,"
                      "len=<flits>,rate=<r>[,arrival=<spec>]; chunks "
                      "separated by ';'"},
    build=None))
