"""Arrival-trace record and replay (JSONL), formats v1 and v2.

A trace pins a workload so it can be replayed deterministically.  Two
formats exist:

* ``repro-trace/v1`` records the *temporal* half only: which node
  injected at which cycle.  Spatial choices (destinations, the
  broadcast/unicast coin) are re-drawn from their named RNG streams at
  replay time, so a v1 replay is flit-exact only with the original seed
  and pattern.
* ``repro-trace/v2`` (written by :class:`TraceRecorder` since the
  multi-class refactor) records the full injection decision per event --
  destination, message size, traffic-class name and broadcast flag -- so
  replay is **seed- and pattern-independent** and works for multi-class
  workloads (where one node may inject several classes in one cycle).
  :class:`~repro.traffic.mix.TrafficMix` detects a v2 payload on its
  arrival model and injects the recorded messages verbatim, consuming no
  randomness.

Format
------
Line-oriented JSON, one object per line:

* line 1, the header::

      {"format": "repro-trace/v2", "n": 16, "meta": {...}}

  ``n`` is the node count the trace was recorded on (replay networks
  must match); ``meta`` is free-form provenance (source scenario, rate,
  seed, horizon).
* every further line, one arrival.  v1::

      {"t": 1042, "node": 3}

  v2 (``dst`` is -1 for broadcasts; ``cls`` is null for untagged
  single-class traffic)::

      {"t": 1042, "node": 3, "dst": 7, "size": 10, "cls": "fill",
       "bcast": false}

  sorted by ``(t, node)`` -- the order the simulator injects in.  v1
  allows at most one arrival per node per cycle; v2 allows several
  (multi-class), in their original injection order.

Record with :class:`TraceRecorder` (hooks
:attr:`repro.traffic.mix.TrafficMix.on_inject`, so both backends record
identically), replay through the ``"trace:path=..."`` arrival scenario
(:mod:`repro.workloads.registry`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TRACE_FORMAT", "TRACE_FORMAT_V2", "Trace", "TraceRecorder"]

TRACE_FORMAT = "repro-trace/v1"
TRACE_FORMAT_V2 = "repro-trace/v2"

#: tuple layouts: v1 events are ``(t, node)``; v2 events are
#: ``(t, node, dst, size, cls, bcast)``
_V1_LEN, _V2_LEN = 2, 6


@dataclass
class Trace:
    """An in-memory arrival trace: node count + sorted event tuples.

    ``events`` holds ``(t, node)`` pairs (v1) or ``(t, node, dst, size,
    cls, bcast)`` records (v2); the two layouts cannot be mixed.
    """

    n: int
    events: List[Tuple] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"trace needs n >= 1 nodes (got {self.n})")
        lengths = {len(ev) for ev in self.events}
        if lengths - {_V1_LEN, _V2_LEN} or len(lengths) > 1:
            raise ValueError(
                f"trace events must be uniform (t, node) or (t, node, "
                f"dst, size, cls, bcast) tuples (got lengths {lengths})")
        for ev in self.events:
            t, node = ev[0], ev[1]
            if not 0 <= node < self.n:
                raise ValueError(
                    f"trace event node {node} out of range for n={self.n}")
            if t < 0:
                raise ValueError(f"trace event cycle {t} is negative")
            if len(ev) == _V2_LEN:
                _, _, dst, size, cls, bcast = ev
                if size < 1:
                    raise ValueError(
                        f"trace event size {size} must be >= 1 flit")
                if bcast:
                    if dst != -1:
                        raise ValueError(
                            f"broadcast trace event must carry dst=-1 "
                            f"(got {dst})")
                elif not 0 <= dst < self.n:
                    raise ValueError(
                        f"trace event dst {dst} out of range for "
                        f"n={self.n}")
        # stable sort on (t, node): same-cycle events of one node (a
        # multi-class v2 burst) keep their recorded injection order
        self.events.sort(key=lambda ev: (ev[0], ev[1]))

    @property
    def version(self) -> int:
        return 2 if self.events and len(self.events[0]) == _V2_LEN else 1

    def __len__(self) -> int:
        return len(self.events)

    def per_node(self) -> List[List[int]]:
        """Arrival cycles split per node (ascending), length ``n``."""
        out: List[List[int]] = [[] for _ in range(self.n)]
        for ev in self.events:
            out[ev[1]].append(ev[0])
        return out

    def per_node_events(self) -> List[List[Tuple]]:
        """v2 payloads split per node: ``(t, dst, size, cls, bcast)``
        records in injection order, length ``n``."""
        if self.version != 2:
            raise ValueError("per_node_events needs a v2 trace "
                             "(v1 records arrival times only)")
        out: List[List[Tuple]] = [[] for _ in range(self.n)]
        for t, node, dst, size, cls, bcast in self.events:
            out[node].append((t, dst, size, cls, bcast))
        return out

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the JSONL file (format follows the event layout);
        returns ``path``."""
        v2 = self.version == 2
        fmt = TRACE_FORMAT_V2 if v2 else TRACE_FORMAT
        with open(path, "w") as fh:
            fh.write(json.dumps({"format": fmt, "n": self.n,
                                 "meta": self.meta}) + "\n")
            if v2:
                for t, node, dst, size, cls, bcast in self.events:
                    fh.write(json.dumps(
                        {"t": t, "node": node, "dst": dst, "size": size,
                         "cls": cls, "bcast": bool(bcast)}) + "\n")
            else:
                for t, node in self.events:
                    fh.write(f'{{"t": {t}, "node": {node}}}\n')
        return path

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read and validate a JSONL trace file (either format)."""
        with open(path) as fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: first line is not a JSON header: {exc}"
                ) from None
            fmt = header.get("format") if isinstance(header, dict) else None
            if fmt not in (TRACE_FORMAT, TRACE_FORMAT_V2):
                raise ValueError(
                    f"{path}: not a {TRACE_FORMAT} or {TRACE_FORMAT_V2} "
                    f"trace (header {header_line.strip()!r})")
            v2 = fmt == TRACE_FORMAT_V2
            n = header.get("n")
            if not isinstance(n, int) or n < 1:
                raise ValueError(f"{path}: header 'n' must be a positive "
                                 f"integer (got {n!r})")
            events: List[Tuple] = []
            prev: Optional[Tuple[int, int]] = None
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                    t, node = int(ev["t"]), int(ev["node"])
                    if v2:
                        dst = int(ev["dst"])
                        size = int(ev["size"])
                        raw_cls = ev["cls"]
                        if raw_cls is not None:
                            raw_cls = str(raw_cls)
                        bcast = bool(ev["bcast"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    want = ('{"t", "node", "dst", "size", "cls", "bcast"}'
                            if v2 else '{"t": <cycle>, "node": <node>}')
                    raise ValueError(
                        f"{path}:{lineno}: bad trace event {line!r}; "
                        f"expected {want}"
                    ) from None
                # validate while the line number is still known -- the
                # Trace constructor would only report the bad values
                if t < 0:
                    raise ValueError(
                        f"{path}:{lineno}: negative cycle {t}")
                if not 0 <= node < n:
                    raise ValueError(
                        f"{path}:{lineno}: node {node} out of range "
                        f"for n={n}")
                if prev is not None:
                    if (t, node) < prev or (not v2 and (t, node) == prev):
                        what = ("duplicate" if (t, node) == prev
                                else "out-of-order")
                        raise ValueError(
                            f"{path}:{lineno}: {what} event (t={t}, "
                            f"node={node}) after (t={prev[0]}, "
                            f"node={prev[1]}); traces must be sorted "
                            f"by (t, node)" +
                            ("" if v2 else " with at most one arrival "
                                           "per node per cycle"))
                prev = (t, node)
                if v2:
                    if size < 1:
                        raise ValueError(
                            f"{path}:{lineno}: size {size} must be >= 1")
                    if bcast:
                        if dst != -1:
                            raise ValueError(
                                f"{path}:{lineno}: broadcast event must "
                                f"carry dst=-1 (got {dst})")
                    elif not 0 <= dst < n:
                        raise ValueError(
                            f"{path}:{lineno}: dst {dst} out of range "
                            f"for n={n}")
                    events.append((t, node, dst, size, raw_cls, bcast))
                else:
                    events.append((t, node))
        return cls(n=n, events=events,
                   meta=dict(header.get("meta") or {}))


class TraceRecorder:
    """Captures every injection of a :class:`~repro.traffic.mix.TrafficMix`.

    >>> recorder = TraceRecorder.attach(session.mix)   # doctest: +SKIP
    >>> session.run()                                  # doctest: +SKIP
    >>> recorder.trace().save("run.jsonl")             # doctest: +SKIP

    ``TrafficMix.inject`` is the single funnel both backends go through
    (the reference loop via ``generate``, the fast-forwarding backends
    directly when replaying precomputed blocks), so the recorded train
    is backend-independent.  Recordings carry the full injection
    decision (``repro-trace/v2``): destination, size, class name and
    broadcast flag per event.
    """

    def __init__(self, n: int, meta: Optional[Dict[str, object]] = None):
        self.n = n
        self.meta: Dict[str, object] = dict(meta or {})
        self.events: List[Tuple] = []

    def note(self, node: int, now: int, cls: Optional[str], dst: int,
             size: int, bcast: bool) -> None:
        """The ``on_inject`` callback: one message entered at ``node``."""
        self.events.append((now, node, dst, size, cls, bcast))

    def trace(self) -> Trace:
        return Trace(n=self.n, events=list(self.events), meta=self.meta)

    @classmethod
    def attach(cls, mix, meta: Optional[Dict[str, object]] = None
               ) -> "TraceRecorder":
        """Create a recorder and install it as ``mix.on_inject``."""
        rec = cls(n=mix.net.n, meta=meta)
        mix.on_inject = rec.note
        return rec
