"""Arrival-trace record and replay (JSONL).

A trace pins the *temporal* half of a workload: which node injected a
message at which cycle.  Spatial choices (destinations, the
broadcast/unicast coin) are not recorded -- they are drawn from their own
named RNG streams at injection time, so replaying a trace with the same
seed and pattern reproduces the original run flit-for-flit, while
replaying with a different pattern re-asks "what if the same arrival
process hit a different spatial distribution?".

Format (``repro-trace/v1``)
---------------------------
Line-oriented JSON, one object per line:

* line 1, the header::

      {"format": "repro-trace/v1", "n": 16, "meta": {...}}

  ``n`` is the node count the trace was recorded on (replay networks
  must match); ``meta`` is free-form provenance (source scenario, rate,
  seed, horizon).
* every further line, one arrival::

      {"t": 1042, "node": 3}

  sorted by ``(t, node)`` -- the order the simulator injects in.

Record with :class:`TraceRecorder` (hooks
:attr:`repro.traffic.mix.TrafficMix.on_inject`, so both backends record
identically), replay through the ``"trace:path=..."`` arrival scenario
(:mod:`repro.workloads.registry`), which hands each node a
:class:`~repro.workloads.arrivals.TraceInjector`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TRACE_FORMAT", "Trace", "TraceRecorder"]

TRACE_FORMAT = "repro-trace/v1"


@dataclass
class Trace:
    """An in-memory arrival trace: node count + sorted (cycle, node) events."""

    n: int
    events: List[Tuple[int, int]] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"trace needs n >= 1 nodes (got {self.n})")
        for t, node in self.events:
            if not 0 <= node < self.n:
                raise ValueError(
                    f"trace event node {node} out of range for n={self.n}")
            if t < 0:
                raise ValueError(f"trace event cycle {t} is negative")
        self.events.sort()

    def __len__(self) -> int:
        return len(self.events)

    def per_node(self) -> List[List[int]]:
        """Arrival cycles split per node (ascending), length ``n``."""
        out: List[List[int]] = [[] for _ in range(self.n)]
        for t, node in self.events:
            out[node].append(t)
        return out

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the JSONL file; returns ``path``."""
        with open(path, "w") as fh:
            fh.write(json.dumps({"format": TRACE_FORMAT, "n": self.n,
                                 "meta": self.meta}) + "\n")
            for t, node in self.events:
                fh.write(f'{{"t": {t}, "node": {node}}}\n')
        return path

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read and validate a JSONL trace file."""
        with open(path) as fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}: first line is not a JSON header: {exc}"
                ) from None
            if (not isinstance(header, dict)
                    or header.get("format") != TRACE_FORMAT):
                raise ValueError(
                    f"{path}: not a {TRACE_FORMAT} trace "
                    f"(header {header_line.strip()!r})")
            n = header.get("n")
            if not isinstance(n, int) or n < 1:
                raise ValueError(f"{path}: header 'n' must be a positive "
                                 f"integer (got {n!r})")
            events: List[Tuple[int, int]] = []
            prev: Optional[Tuple[int, int]] = None
            for lineno, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                    t, node = int(ev["t"]), int(ev["node"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    raise ValueError(
                        f"{path}:{lineno}: bad trace event {line!r}; "
                        f'expected {{"t": <cycle>, "node": <node>}}'
                    ) from None
                # validate while the line number is still known -- the
                # Trace constructor would only report the bad values
                if t < 0:
                    raise ValueError(
                        f"{path}:{lineno}: negative cycle {t}")
                if not 0 <= node < n:
                    raise ValueError(
                        f"{path}:{lineno}: node {node} out of range "
                        f"for n={n}")
                if prev is not None and (t, node) <= prev:
                    what = ("duplicate" if (t, node) == prev
                            else "out-of-order")
                    raise ValueError(
                        f"{path}:{lineno}: {what} event (t={t}, "
                        f"node={node}) after (t={prev[0]}, "
                        f"node={prev[1]}); traces must be sorted "
                        f"by (t, node) with at most one arrival per "
                        f"node per cycle")
                prev = (t, node)
                events.append((t, node))
        return cls(n=n, events=events,
                   meta=dict(header.get("meta") or {}))


class TraceRecorder:
    """Captures every injection of a :class:`~repro.traffic.mix.TrafficMix`.

    >>> recorder = TraceRecorder.attach(session.mix)   # doctest: +SKIP
    >>> session.run()                                  # doctest: +SKIP
    >>> recorder.trace().save("run.jsonl")             # doctest: +SKIP

    ``TrafficMix.inject`` is the single funnel both backends go through
    (the reference loop via ``generate``, the active backend directly
    when replaying precomputed blocks), so the recorded train is
    backend-independent.
    """

    def __init__(self, n: int, meta: Optional[Dict[str, object]] = None):
        self.n = n
        self.meta: Dict[str, object] = dict(meta or {})
        self.events: List[Tuple[int, int]] = []

    def note(self, node: int, now: int) -> None:
        """The ``on_inject`` callback: one message entered at ``node``."""
        self.events.append((now, node))

    def trace(self) -> Trace:
        return Trace(n=self.n, events=sorted(self.events), meta=self.meta)

    @classmethod
    def attach(cls, mix, meta: Optional[Dict[str, object]] = None
               ) -> "TraceRecorder":
        """Create a recorder and install it as ``mix.on_inject``."""
        rec = cls(n=mix.net.n, meta=meta)
        mix.on_inject = rec.note
        return rec
