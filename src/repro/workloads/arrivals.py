"""Deprecated import path for the temporal arrival models.

.. deprecated::
    :class:`BurstyInjector` and :class:`TraceInjector` (and the
    ``fires()`` / ``arrivals_in()`` block contract they implement) now
    live in :mod:`repro.traffic.arrival`, next to
    :class:`~repro.traffic.arrival.BernoulliInjector` and the shared
    :class:`~repro.traffic.arrival.ArrivalModel` protocol -- one module
    instead of two parallel definitions of the same contract.  This
    module re-exports them so existing imports keep working; new code
    should import from :mod:`repro.traffic.arrival`.
"""

from __future__ import annotations

from repro.traffic.arrival import (ArrivalModel, BurstyInjector,
                                   TraceInjector)

__all__ = ["ArrivalModel", "BurstyInjector", "TraceInjector"]
