"""Application-level workload scenarios: synthetic traffic models of
real MPSoC applications, expressed as multi-class mixes.

The paper motivates the Quarc with cache-coherence traffic (Sec. 2.2):
short invalidate *broadcasts* mixed with long cache-line *unicasts* --
two message classes with different sizes, casts and rates.  The
:mod:`repro.workloads` registry makes such models first-class named
scenarios: each builder here returns a list of
:class:`~repro.traffic.mix.TrafficClass` and registers under the
``workload`` kind, so ``repro run --workload cache_coherence:...``,
``WorkloadSpec(workload=...)``, sweeps and benchmarks all reach it with
no further wiring (``repro scenarios list`` discovers it).

Models
------
``cache_coherence``
    N cores running a shared-memory workload.  Each shared-line write
    triggers an invalidate broadcast to all other caches (class
    ``inv``); read misses fetch the line from its home node as ordinary
    unicasts (class ``fill``).  ``storms=true`` makes the invalidations
    bursty (write-heavy phases), the regime where the Spidergon's
    broadcast-by-unicast relay chain falls furthest behind.
``allreduce``
    A ring all-reduce: reduce-scatter chunks flow downstream (class
    ``scatter``, dst = src+1), all-gather chunks flow upstream (class
    ``gather``, dst = src-1), and a low-rate completion ``barrier``
    broadcast models the end-of-iteration notification.
"""

from __future__ import annotations

from typing import List

from repro.traffic.mix import TrafficClass
from repro.workloads.registry import (WORKLOAD, ScenarioInfo,
                                      register_scenario)

__all__ = ["cache_coherence_classes", "allreduce_classes"]


def cache_coherence_classes(n: int, read_rate: float = 0.012,
                            write_rate: float = 0.002,
                            data_len: int = 10, inv_len: int = 2,
                            storms: bool = False) -> List[TrafficClass]:
    """The paper's motivating MPSoC cache-coherence mix (Sec. 2.2).

    ``fill``: read-miss line fetches, uniform home nodes, ``data_len``
    flits (header + cache line + tail).  ``inv``: shared-write
    invalidate broadcasts, ``inv_len`` flits (address-only).  With
    ``storms=true`` the invalidations arrive in bursts -- the
    write-intensive phases that stress the broadcast path hardest.
    """
    inv_arrival = "bursty:on=0.2,len=6" if storms else "bernoulli"
    return [
        TrafficClass("fill", rate=read_rate, msg_len=data_len,
                     pattern="uniform", cast="unicast"),
        TrafficClass("inv", rate=write_rate, msg_len=inv_len,
                     arrival=inv_arrival, cast="broadcast"),
    ]


def allreduce_classes(n: int, chunk: int = 8, rate: float = 0.01,
                      barrier_rate: float = 0.0005,
                      barrier_len: int = 2) -> List[TrafficClass]:
    """A steady-state ring all-reduce.

    Reduce-scatter chunks travel downstream and all-gather chunks
    upstream (``neighbour`` pattern with offsets +1 / -1), loading both
    ring directions evenly; a sparse ``barrier`` broadcast models the
    per-iteration completion notification.
    """
    return [
        TrafficClass("scatter", rate=rate, msg_len=chunk,
                     pattern="neighbour:offset=1", cast="unicast"),
        TrafficClass("gather", rate=rate, msg_len=chunk,
                     pattern="neighbour:offset=-1", cast="unicast"),
        TrafficClass("barrier", rate=barrier_rate, msg_len=barrier_len,
                     cast="broadcast"),
    ]


register_scenario(ScenarioInfo(
    name="cache_coherence", kind=WORKLOAD,
    summary="MPSoC coherence traffic: cache-line fills (unicast) + "
            "invalidation broadcasts (the paper's Sec. 2.2 workload)",
    params={"read_rate": "line fills per core per cycle (default 0.012)",
            "write_rate": "shared writes -> invalidate broadcasts "
                          "(default 0.002)",
            "data_len": "cache-line fill size in flits (default 10)",
            "inv_len": "invalidate message size in flits (default 2)",
            "storms": "true for bursty invalidation storms "
                      "(default false)"},
    aliases=("coherence",),
    build=cache_coherence_classes))

register_scenario(ScenarioInfo(
    name="allreduce", kind=WORKLOAD,
    summary="ring all-reduce: reduce-scatter + all-gather chunk streams "
            "on both ring directions, plus a barrier broadcast",
    params={"chunk": "chunk size in flits (default 8)",
            "rate": "chunks per node per cycle, per direction "
                    "(default 0.01)",
            "barrier_rate": "barrier broadcasts per node per cycle "
                            "(default 0.0005)",
            "barrier_len": "barrier message size in flits (default 2)"},
    aliases=("all-reduce", "all_reduce"),
    build=allreduce_classes))
