"""Application-level workload scenarios: synthetic traffic models of
real MPSoC applications, expressed as multi-class mixes.

The paper motivates the Quarc with cache-coherence traffic (Sec. 2.2):
short invalidate *broadcasts* mixed with long cache-line *unicasts* --
two message classes with different sizes, casts and rates.  The
:mod:`repro.workloads` registry makes such models first-class named
scenarios: each builder here returns a list of
:class:`~repro.traffic.mix.TrafficClass` and registers under the
``workload`` kind, so ``repro run --workload cache_coherence:...``,
``WorkloadSpec(workload=...)``, sweeps and benchmarks all reach it with
no further wiring (``repro scenarios list`` discovers it).

Both models are built on the closed-loop application engine
(:mod:`repro.workloads.closedloop`): with ``window=0`` (the default)
they build the original open-loop class lists -- byte-identical to the
pre-engine behaviour, pinned by the golden fixtures -- and with
``window > 0`` they return a
:class:`~repro.workloads.closedloop.ClosedLoopWorkload` whose sources
throttle on outstanding transactions.

Models
------
``cache_coherence``
    N cores running a shared-memory workload.  Each shared-line write
    triggers an invalidate broadcast to all other caches (class
    ``inv``); read misses fetch the line from its home node as ordinary
    unicasts (class ``fill``).  ``storms=true`` makes the invalidations
    bursty (write-heavy phases), the regime where the Spidergon's
    broadcast-by-unicast relay chain falls furthest behind.  With
    ``window > 0`` the fills become directory request/reply
    transactions: a short ``req_len``-flit miss request travels to the
    line's home directory (the ``directory`` pattern's NUMA quadrants,
    ``quadrants`` arcs with probability ``local`` of a same-quadrant
    home), the home spends ``service`` cycles looking the line up, and
    the ``data_len``-flit fill flows back; each core stalls once
    ``window`` misses are outstanding (its MSHR budget).
``allreduce``
    A ring all-reduce: reduce-scatter chunks flow downstream (class
    ``scatter``, dst = src+1), all-gather chunks flow upstream (class
    ``gather``, dst = src-1), and a ``barrier`` broadcast models the
    end-of-iteration notification.  Open-loop (``window=0``) the three
    classes free-run at fixed rates; with ``window > 0`` the chunk
    streams become closed-loop *phased* classes -- each node sends
    ``quota`` chunks per direction per iteration, at most ``window`` in
    flight, pacing issues with a ``think`` coin -- and the engine ends
    each iteration with the barrier broadcast (root rotating across
    iterations) followed by ``gap`` idle cycles of compute.
"""

from __future__ import annotations

from typing import List, Union

from repro.traffic.mix import TrafficClass
from repro.workloads.closedloop import (MODE_REQREPLY, MODE_STREAM,
                                        ClosedLoopClass, ClosedLoopWorkload)
from repro.workloads.registry import (WORKLOAD, ScenarioInfo,
                                      register_scenario)

__all__ = ["cache_coherence_classes", "allreduce_classes"]


def cache_coherence_classes(
        n: int, read_rate: float = 0.012, write_rate: float = 0.002,
        data_len: int = 10, inv_len: int = 2, storms: bool = False,
        window: int = 0, req_len: int = 2, service: int = 8,
        quadrants: int = 4, local: float = 0.6,
) -> Union[List[TrafficClass], ClosedLoopWorkload]:
    """The paper's motivating MPSoC cache-coherence mix (Sec. 2.2).

    ``fill``: read-miss line fetches, ``data_len`` flits (header +
    cache line + tail).  ``inv``: shared-write invalidate broadcasts,
    ``inv_len`` flits (address-only).  With ``storms=true`` the
    invalidations arrive in bursts -- the write-intensive phases that
    stress the broadcast path hardest.

    ``window=0`` (default): open-loop, uniform fill homes -- the
    original model, byte-for-byte.  ``window > 0``: closed-loop
    directory protocol -- fills become request/reply transactions
    against NUMA-quadrant directory homes, with at most ``window``
    misses outstanding per core (``read_rate`` becomes the per-cycle
    issue probability while a slot is free).
    """
    inv_arrival = "bursty:on=0.2,len=6" if storms else "bernoulli"
    inv = TrafficClass("inv", rate=write_rate, msg_len=inv_len,
                       arrival=inv_arrival, cast="broadcast")
    if not window:
        return [
            TrafficClass("fill", rate=read_rate, msg_len=data_len,
                         pattern="uniform", cast="unicast"),
            inv,
        ]
    fill = TrafficClass(
        "fill", rate=read_rate, msg_len=data_len,
        pattern=f"directory:quadrants={quadrants},local={local}",
        arrival=f"closedloop:window={window}", cast="unicast")
    return ClosedLoopWorkload(
        classes=(fill, inv),
        closed=(ClosedLoopClass("fill", mode=MODE_REQREPLY,
                                req_len=req_len, service=service),))


def allreduce_classes(
        n: int, chunk: int = 8, rate: float = 0.01,
        barrier_rate: float = 0.0005, barrier_len: int = 2,
        window: int = 0, quota: int = 16, gap: int = 64,
        think: float = 1.0,
) -> Union[List[TrafficClass], ClosedLoopWorkload]:
    """A ring all-reduce.

    Reduce-scatter chunks travel downstream and all-gather chunks
    upstream (``neighbour`` pattern with offsets +1 / -1), loading both
    ring directions evenly.

    ``window=0`` (default): the original steady-state model -- the
    chunk streams free-run at ``rate`` and a sparse ``barrier``
    broadcast arrives at ``barrier_rate``, byte-for-byte.  ``window >
    0``: closed-loop iterations -- each node sends ``quota`` chunks per
    direction per iteration (``think`` issue probability, at most
    ``window`` in flight per direction); when every chunk of the
    iteration has been delivered the engine broadcasts the barrier
    (rotating the root) and idles ``gap`` compute cycles before the
    next iteration, so ``barrier_rate`` is unused (the barrier is
    event-driven, not a rate process).
    """
    if not window:
        return [
            TrafficClass("scatter", rate=rate, msg_len=chunk,
                         pattern="neighbour:offset=1", cast="unicast"),
            TrafficClass("gather", rate=rate, msg_len=chunk,
                         pattern="neighbour:offset=-1", cast="unicast"),
            TrafficClass("barrier", rate=barrier_rate, msg_len=barrier_len,
                         cast="broadcast"),
        ]
    arrival = f"closedloop:window={window}"
    return ClosedLoopWorkload(
        classes=(
            TrafficClass("scatter", rate=think, msg_len=chunk,
                         pattern="neighbour:offset=1", arrival=arrival,
                         cast="unicast"),
            TrafficClass("gather", rate=think, msg_len=chunk,
                         pattern="neighbour:offset=-1", arrival=arrival,
                         cast="unicast"),
            # rate 0: the engine injects the barrier at phase
            # completion; it never fires as an arrival process
            TrafficClass("barrier", rate=0.0, msg_len=barrier_len,
                         cast="broadcast"),
        ),
        closed=(
            ClosedLoopClass("scatter", mode=MODE_STREAM, quota=quota),
            ClosedLoopClass("gather", mode=MODE_STREAM, quota=quota),
        ),
        barrier="barrier", gap=gap)


register_scenario(ScenarioInfo(
    name="cache_coherence", kind=WORKLOAD,
    summary="MPSoC coherence traffic: cache-line fills (unicast) + "
            "invalidation broadcasts (the paper's Sec. 2.2 workload); "
            "window>0 closes the loop (directory request/reply)",
    params={"read_rate": "line fills per core per cycle (default 0.012)",
            "write_rate": "shared writes -> invalidate broadcasts "
                          "(default 0.002)",
            "data_len": "cache-line fill size in flits (default 10)",
            "inv_len": "invalidate message size in flits (default 2)",
            "storms": "true for bursty invalidation storms "
                      "(default false)",
            "window": "outstanding misses per core; 0 = open-loop "
                      "(default 0)",
            "req_len": "miss-request size in flits (default 2)",
            "service": "directory lookup cycles before the fill reply "
                       "(default 8)",
            "quadrants": "directory-home NUMA quadrants (default 4)",
            "local": "probability a line's home is in the requester's "
                     "own quadrant (default 0.6)"},
    aliases=("coherence",),
    build=cache_coherence_classes))

register_scenario(ScenarioInfo(
    name="allreduce", kind=WORKLOAD,
    summary="ring all-reduce: reduce-scatter + all-gather chunk streams "
            "on both ring directions, plus a barrier broadcast; "
            "window>0 closes the loop (phased iterations)",
    params={"chunk": "chunk size in flits (default 8)",
            "rate": "chunks per node per cycle, per direction, "
                    "open-loop mode (default 0.01)",
            "barrier_rate": "barrier broadcasts per node per cycle, "
                            "open-loop mode (default 0.0005)",
            "barrier_len": "barrier message size in flits (default 2)",
            "window": "chunks in flight per node per direction; 0 = "
                      "open-loop (default 0)",
            "quota": "chunks per node per direction per iteration "
                     "(default 16)",
            "gap": "idle compute cycles between iterations (default 64)",
            "think": "issue probability per free window slot per cycle "
                     "(default 1.0)"},
    aliases=("all-reduce", "all_reduce"),
    build=allreduce_classes))
