"""Named workload scenarios: spatial patterns x temporal arrival models
x multi-class application workloads.

The paper's figures use one workload (uniform unicasts plus a broadcast
fraction beta); this package generalises the simulator into a NoC
workload harness.  A *scenario* is resolved from a compact spec string::

    from repro.workloads import resolve_pattern, resolve_arrival
    pattern = resolve_pattern("hotspot:node=0,p=0.2", n=16)
    arrival = resolve_arrival("bursty:on=0.3,len=8")

and plugs straight into :class:`~repro.traffic.mix.TrafficMix` -- or,
one level up, rides inside a declarative
:class:`~repro.traffic.workload.WorkloadSpec` (``pattern=`` /
``arrival=`` / ``workload=`` fields) through
:class:`~repro.sim.session.SimulationSession`, the CLI (``--pattern`` /
``--arrival`` / ``--workload``, ``repro scenarios``, ``repro trace``),
sweep grids and benchmarks.

Multi-class workloads resolve the same way::

    from repro.workloads import resolve_workload
    classes = resolve_workload("cache_coherence:storms=true", n=16)
    classes = resolve_workload(
        "classes:inv=broadcast,len=2,rate=0.002;"
        "fill=uniform,len=10,rate=0.012", n=16)

Modules
-------
:mod:`repro.workloads.registry`
    The scenario registry, spec-string grammar and resolvers (patterns,
    arrivals and multi-class workloads).
:mod:`repro.workloads.closedloop`
    The closed-loop application engine: reactive sources with
    outstanding-request windows, request/reply transactions and
    barrier-synchronised phases, fed per-cycle completion callbacks by
    every backend.
:mod:`repro.workloads.arrivals`
    Deprecated re-export shim: the temporal models live in
    :mod:`repro.traffic.arrival` (the shared ``ArrivalModel``
    protocol module).
:mod:`repro.workloads.trace`
    The JSONL trace formats (v1 arrival times; v2 full injection
    records), :class:`~repro.workloads.trace.TraceRecorder` and
    :class:`~repro.workloads.trace.Trace` record/replay.
:mod:`repro.workloads.appmodels`
    Application-level scenarios built on multi-class mixes
    (``cache_coherence``, ``allreduce``), registered as first-class
    named workloads.
"""

from repro.workloads import appmodels as _appmodels  # noqa: F401 (registers)
from repro.workloads.appmodels import (allreduce_classes,
                                       cache_coherence_classes)
from repro.workloads.arrivals import BurstyInjector, TraceInjector
from repro.workloads.closedloop import (ClosedLoopClass, ClosedLoopSource,
                                        ClosedLoopWorkload)
from repro.workloads.registry import (ARRIVAL, PATTERN, WORKLOAD,
                                      ArrivalModel, ResolvedArrival,
                                      ScenarioInfo, check_spec,
                                      check_workload, format_spec,
                                      get_scenario, list_scenarios,
                                      parse_classes, parse_spec,
                                      register_scenario, resolve_arrival,
                                      resolve_pattern, resolve_workload,
                                      scenario_table)
from repro.workloads.trace import (TRACE_FORMAT, TRACE_FORMAT_V2, Trace,
                                   TraceRecorder)

__all__ = [
    "ARRIVAL",
    "PATTERN",
    "WORKLOAD",
    "ArrivalModel",
    "BurstyInjector",
    "ClosedLoopClass",
    "ClosedLoopSource",
    "ClosedLoopWorkload",
    "ResolvedArrival",
    "ScenarioInfo",
    "TRACE_FORMAT",
    "TRACE_FORMAT_V2",
    "Trace",
    "TraceInjector",
    "TraceRecorder",
    "allreduce_classes",
    "cache_coherence_classes",
    "check_spec",
    "check_workload",
    "format_spec",
    "get_scenario",
    "list_scenarios",
    "parse_classes",
    "parse_spec",
    "register_scenario",
    "resolve_arrival",
    "resolve_pattern",
    "resolve_workload",
    "scenario_table",
]
