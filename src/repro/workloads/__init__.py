"""Named workload scenarios: spatial patterns x temporal arrival models.

The paper's figures use one workload (uniform unicasts plus a broadcast
fraction beta); this package generalises the simulator into a NoC
workload harness.  A *scenario* is resolved from a compact spec string::

    from repro.workloads import resolve_pattern, resolve_arrival
    pattern = resolve_pattern("hotspot:node=0,p=0.2", n=16)
    arrival = resolve_arrival("bursty:on=0.3,len=8")

and plugs straight into :class:`~repro.traffic.mix.TrafficMix` -- or,
one level up, rides inside a declarative
:class:`~repro.traffic.workload.WorkloadSpec` (``pattern=`` /
``arrival=`` fields) through :class:`~repro.sim.session.SimulationSession`,
the CLI (``--pattern`` / ``--arrival``, ``repro scenarios``,
``repro trace``), sweep grids and benchmarks.

Modules
-------
:mod:`repro.workloads.registry`
    The scenario registry, spec-string grammar and resolvers.
:mod:`repro.workloads.arrivals`
    Temporal models beyond Bernoulli: on/off bursty (MMPP) and
    deterministic trace replay, both honouring the
    ``fires()``/``arrivals_in()`` block contract the active backend's
    idle fast-forward relies on.
:mod:`repro.workloads.trace`
    The JSONL trace format, :class:`~repro.workloads.trace.TraceRecorder`
    and :class:`~repro.workloads.trace.Trace` record/replay.
"""

from repro.workloads.arrivals import BurstyInjector, TraceInjector
from repro.workloads.registry import (ARRIVAL, PATTERN, ArrivalModel,
                                      ScenarioInfo, check_spec,
                                      format_spec, get_scenario,
                                      list_scenarios, parse_spec,
                                      register_scenario, resolve_arrival,
                                      resolve_pattern, scenario_table)
from repro.workloads.trace import TRACE_FORMAT, Trace, TraceRecorder

__all__ = [
    "ARRIVAL",
    "PATTERN",
    "ArrivalModel",
    "BurstyInjector",
    "ScenarioInfo",
    "TRACE_FORMAT",
    "Trace",
    "TraceInjector",
    "TraceRecorder",
    "check_spec",
    "format_spec",
    "get_scenario",
    "list_scenarios",
    "parse_spec",
    "register_scenario",
    "resolve_arrival",
    "resolve_pattern",
    "scenario_table",
]
