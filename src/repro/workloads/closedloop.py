"""The closed-loop application engine: state-aware traffic generation.

Open-loop sources inject independently of network state, which makes
saturation behaviour unphysical: real coherence and collective traffic
throttles itself on outstanding requests.  This module closes the loop.

Three pieces cooperate:

:class:`ClosedLoopSource`
    A *reactive* :class:`~repro.traffic.arrival.ArrivalModel`
    (``reactive = True``): per cycle it flips a think coin at the
    class's rate, but only while fewer than ``window`` of its messages
    are in flight (and, in phased workloads, while it still has phase
    quota).  ``arrivals_in`` raises -- future arrivals depend on
    deliveries that have not happened yet, so fast-forwarding is
    illegal by construction.
:class:`ClosedLoopWorkload`
    The declarative bundle a workload builder returns instead of a
    plain class list: the full :class:`~repro.traffic.mix.TrafficClass`
    declaration plus per-class :class:`ClosedLoopClass` descriptors
    (transaction mode, window, request size, home service time, phase
    quota) and the phase barrier/gap configuration.  Frozen and
    picklable, like everything else a
    :class:`~repro.traffic.workload.WorkloadSpec` resolves to.
:class:`ClosedLoopEngine`
    The runtime: it owns the injection-feedback seam.  Installed as the
    network's ``on_tail`` callback it observes every tail delivery at
    cycle granularity -- all three backends surface deliveries this way,
    the array engine's C kernel included -- and (a) schedules directory
    replies for delivered requests, (b) returns window credits on
    completions, and (c) advances barrier-synchronised phases.  Its
    injections run through the mix's adapters and counters, so traffic
    accounting, the ``on_inject`` tap and the collector see one
    consistent stream whichever backend drives the run.

Transaction modes
-----------------
``reqreply``
    The coherence shape: the source sends a short ``req_len``-flit
    request to a directory home (spatial model: the ``directory``
    pattern's NUMA quadrants).  When the request's tail reaches the
    home, the engine schedules the ``msg_len``-flit reply ``1 +
    service`` cycles later, home back to requester.  The reply's tail
    arrival releases the window slot, and the *completion time* --
    request injection to reply delivery, the full round trip including
    queueing on both legs -- is recorded per class.
``stream``
    The collective shape: the source's own ``msg_len``-flit message is
    the transaction; its tail delivery releases the slot and completes
    it.  With ``quota > 0`` the class is *phased*: each node may issue
    ``quota`` messages per phase, and when every phased message of the
    phase has been delivered the engine broadcasts the barrier class
    (rotating the barrier root across phases), waits for it to
    complete, idles ``gap`` cycles, and opens the next phase.  The
    barrier class's completion time is the phase duration
    (phase start to barrier completion).

Determinism: every backend drives reactive mixes cycle by cycle
(generation at ``t`` sees exactly the deliveries of cycles ``< t``),
delivery order within a cycle is identical across backends, and the
engine's reply queue preserves arrival order -- so closed-loop runs are
byte-identical across reference/active/array, C kernel on or off,
exactly like open-loop runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.noc.packet import UNICAST, Packet
from repro.sim.stats import OnlineStats
from repro.traffic.arrival import ArrivalModel
from repro.traffic.mix import CAST_BROADCAST, CAST_UNICAST, TrafficClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.traffic.mix import TrafficMix

__all__ = ["ClosedLoopSource", "ClosedLoopClass", "ClosedLoopWorkload",
           "ClosedLoopEngine", "MODE_REQREPLY", "MODE_STREAM"]

MODE_REQREPLY = "reqreply"
MODE_STREAM = "stream"

#: packet.meta tags the engine uses to recognise its transactions at
#: the delivery callback (values: the class index, or (index, created))
_TAG_REQUEST = "clq"
_TAG_REPLY = "clr"
_TAG_STREAM = "clm"


class ClosedLoopSource(ArrivalModel):
    """Reactive per-node source: think coin gated by an in-flight window.

    ``fires()`` returns ``False`` -- without consuming a draw -- while
    ``window`` transactions are outstanding or the phase quota is spent;
    otherwise it flips one coin at ``rate`` (no draw at rate >= 1).
    The draw count therefore depends on delivery feedback, which is
    fine: reactive mixes run cycle by cycle on every backend, so the
    feedback (and hence the stream) is identical everywhere.

    The engine owns the bookkeeping: it increments nothing here beyond
    what ``fires()`` itself does, and returns window credits by
    decrementing ``outstanding`` when a transaction completes.
    """

    __slots__ = ("rate", "rng", "window", "arrivals", "outstanding",
                 "quota_left")

    reactive = True

    def __init__(self, rate: float, rng: random.Random, window: int = 4):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1] (got {rate})")
        if window < 1:
            raise ValueError(
                f"closed-loop window must be >= 1 (got {window})")
        self.rate = rate
        self.rng = rng
        self.window = window
        self.arrivals = 0
        #: transactions in flight (issued, not yet completed)
        self.outstanding = 0
        #: issues left this phase; -1 = unphased (unlimited)
        self.quota_left = -1

    def fires(self) -> bool:
        """One per-cycle issue check (stalls while the window is full)."""
        if self.outstanding >= self.window or not self.quota_left:
            return False
        r = self.rate
        if r <= 0.0:
            return False
        if r < 1.0 and self.rng.random() >= r:
            return False
        self.arrivals += 1
        self.outstanding += 1
        if self.quota_left > 0:
            self.quota_left -= 1
        return True

    def arrivals_in(self, start: int, stop: int) -> List[int]:
        raise RuntimeError(
            "closed-loop sources are reactive: arrivals depend on "
            "deliveries that have not happened yet, so they cannot be "
            "precomputed in blocks; drive the mix cycle by cycle "
            "(SimBackend.run_mix does)")


@dataclass(frozen=True)
class ClosedLoopClass:
    """Closed-loop descriptor for one traffic class of a workload.

    ``name`` must match a unicast :class:`TrafficClass` in the same
    workload whose ``arrival`` is a ``closedloop:`` spec (the class's
    ``rate`` is the think coin, its ``msg_len`` the data transfer).
    """

    name: str
    mode: str = MODE_REQREPLY     # "reqreply" | "stream"
    req_len: int = 2              # request size in flits (reqreply)
    service: int = 0              # home service cycles before the reply
    quota: int = 0                # issues per node per phase (0 = unphased)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_REQREPLY, MODE_STREAM):
            raise ValueError(
                f"closed-loop class {self.name!r}: mode must be "
                f"{MODE_REQREPLY!r} or {MODE_STREAM!r} (got {self.mode!r})")
        if self.req_len < 1:
            raise ValueError(
                f"closed-loop class {self.name!r}: req_len must be >= 1 "
                f"flit (got {self.req_len})")
        if self.service < 0:
            raise ValueError(
                f"closed-loop class {self.name!r}: service must be >= 0 "
                f"cycles (got {self.service})")
        if self.quota < 0:
            raise ValueError(
                f"closed-loop class {self.name!r}: quota must be >= 0 "
                f"(got {self.quota})")


@dataclass(frozen=True)
class ClosedLoopWorkload:
    """A multi-class workload with closed-loop semantics attached.

    Returned by workload builders instead of a plain class list when
    closed-loop parameters are engaged;
    :class:`~repro.sim.session.SimulationSession` recognises it and
    wires a :class:`ClosedLoopEngine` around the mix.
    """

    classes: Tuple[TrafficClass, ...]
    closed: Tuple[ClosedLoopClass, ...]
    barrier: str = ""             # broadcast class ending each phase
    gap: int = 0                  # idle cycles between phases

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", tuple(self.classes))
        object.__setattr__(self, "closed", tuple(self.closed))
        if not self.classes:
            raise ValueError("closed-loop workload declares no classes")
        if not self.closed:
            raise ValueError(
                "closed-loop workload has no closed-loop classes; "
                "return the plain class list instead")
        if self.gap < 0:
            raise ValueError(f"phase gap must be >= 0 (got {self.gap})")
        by_name = {c.name: c for c in self.classes}
        for cl in self.closed:
            cls = by_name.get(cl.name)
            if cls is None:
                raise ValueError(
                    f"closed-loop class {cl.name!r} has no matching "
                    f"traffic class (declared: {sorted(by_name)})")
            if cls.cast != CAST_UNICAST:
                raise ValueError(
                    f"closed-loop class {cl.name!r} must be unicast "
                    f"(its transactions are point-to-point)")
            if not str(cls.arrival).startswith("closedloop"):
                raise ValueError(
                    f"closed-loop class {cl.name!r} needs a "
                    f"'closedloop:window=...' arrival spec "
                    f"(got {cls.arrival!r})")
        if self.barrier:
            cls = by_name.get(self.barrier)
            if cls is None or cls.cast != CAST_BROADCAST:
                raise ValueError(
                    f"barrier class {self.barrier!r} must be a declared "
                    f"broadcast class")
            if any(cl.name == self.barrier for cl in self.closed):
                raise ValueError(
                    f"barrier class {self.barrier!r} cannot itself be "
                    f"closed-loop")
        phased = any(cl.quota > 0 for cl in self.closed)
        if self.barrier and not phased:
            raise ValueError(
                "a barrier needs phased classes (quota > 0) to "
                "synchronise")

    def scaled(self, factor: float) -> "ClosedLoopWorkload":
        """Scale every class's think/arrival rate (the sweep axis)."""
        return replace(self, classes=tuple(
            c.scaled(factor) for c in self.classes))


class ClosedLoopEngine:
    """Runtime feedback seam between deliveries and injections.

    Construction wires it into the mix (issue interception + per-cycle
    hook); the session installs :meth:`on_tail` as the network's tail
    callback.  All state transitions happen either in ``on_tail``
    (during ``step``) or in :meth:`begin_cycle` (at the head of
    ``generate``), so the generate-before-step cycle contract makes the
    whole loop deterministic across backends.
    """

    def __init__(self, wl: ClosedLoopWorkload, mix: "TrafficMix",
                 warmup: int = 0):
        if mix.classes is None:
            raise ValueError(
                "the closed-loop engine needs a multi-class mix built "
                "from the workload's class list")
        names = [c.name for c in mix.classes]
        for cl in wl.closed:
            if cl.name not in names:
                raise ValueError(
                    f"closed-loop class {cl.name!r} is not part of the "
                    f"mix (classes: {names})")
        self.wl = wl
        self.mix = mix
        self.warmup = warmup
        self.n = mix.net.n
        k_count = len(names)
        #: class index -> closed-loop descriptor
        self.closed_k: Dict[int, ClosedLoopClass] = {}
        #: class index -> per-node sources (mix-built injectors)
        self.sources: Dict[int, List[ClosedLoopSource]] = {}
        #: per-class completion accounting (closed classes + barrier)
        self.completed: Dict[str, int] = {}
        self.comp_stats: Dict[str, OnlineStats] = {}
        for cl in wl.closed:
            k = names.index(cl.name)
            srcs = [mix._injectors[i * k_count + k] for i in range(self.n)]
            for s in srcs:
                if not isinstance(s, ClosedLoopSource):
                    raise ValueError(
                        f"class {cl.name!r} resolved to "
                        f"{type(s).__name__}, not a ClosedLoopSource; "
                        f"its arrival spec must be 'closedloop:...'")
            self.closed_k[k] = cl
            self.sources[k] = srcs
            self.completed[cl.name] = 0
            self.comp_stats[cl.name] = OnlineStats()
        #: pending directory replies: cycle -> [(home, requester, k,
        #: request-created)], appended in delivery order
        self._due: Dict[int, List[Tuple[int, int, int, int]]] = {}
        # barrier-synchronised phases
        self._phase_total = sum(cl.quota * self.n for cl in wl.closed
                                if cl.quota > 0)
        self._phase_left = self._phase_total
        self.phases_done = 0
        self.phase_start = 0
        self._barrier_k: Optional[int] = None
        self._barrier_op = None
        self._barrier_at: Optional[int] = None
        self._resume_at: Optional[int] = None
        if wl.barrier:
            self._barrier_k = names.index(wl.barrier)
            self.completed[wl.barrier] = 0
            self.comp_stats[wl.barrier] = OnlineStats()
        if self._phase_total:
            for k, cl in self.closed_k.items():
                if cl.quota > 0:
                    for s in self.sources[k]:
                        s.quota_left = cl.quota
        mix.attach_closedloop(self)

    # ------------------------------------------------------------------
    # generation side (runs at the head of mix.generate)
    # ------------------------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        """Engine-driven injections for this cycle, before the sources."""
        due = self._due.pop(now, None)
        if due is not None:
            for home, requester, k, created in due:
                self._inject_reply(home, requester, k, created, now)
        if self._barrier_at is not None and now >= self._barrier_at:
            self._barrier_at = None
            self._inject_barrier(now)
        if self._resume_at is not None and now >= self._resume_at:
            self._resume_at = None
            self._start_phase(now)

    def issue(self, node: int, k: int, now: int) -> None:
        """Inject one closed-loop transaction (the mix delegates here
        when a closed class's source fires)."""
        mix = self.mix
        cl = self.closed_k[k]
        cls = mix.classes[k]
        dst = mix._cls_patterns[k].pick(node, mix._cls_dst_rng[node][k])
        if cl.mode == MODE_REQREPLY:
            size, tag = cl.req_len, _TAG_REQUEST
        else:
            size, tag = cls.msg_len, _TAG_STREAM
        if mix.on_inject is not None:
            mix.on_inject(node, now, cls.name, dst, size, False)
        pkt = Packet(node, dst, size, UNICAST, created=now)
        pkt.cls = cls.name
        pkt.meta[tag] = k
        mix.net.adapters[node].send(pkt, now)
        mix.generated_unicasts += 1
        mix.class_generated[cls.name] += 1

    def _inject_reply(self, home: int, requester: int, k: int,
                      created: int, now: int) -> None:
        mix = self.mix
        cls = mix.classes[k]
        if mix.on_inject is not None:
            mix.on_inject(home, now, cls.name, requester, cls.msg_len,
                          False)
        pkt = Packet(home, requester, cls.msg_len, UNICAST, created=now)
        pkt.cls = cls.name
        pkt.meta[_TAG_REPLY] = (k, created)
        mix.net.adapters[home].send(pkt, now)
        mix.generated_unicasts += 1
        mix.class_generated[cls.name] += 1

    def _inject_barrier(self, now: int) -> None:
        mix = self.mix
        cls = mix.classes[self._barrier_k]
        # rotate the barrier root so no node's injection port becomes
        # the permanent phase bottleneck
        src = self.phases_done % self.n
        if mix.on_inject is not None:
            mix.on_inject(src, now, cls.name, -1, cls.msg_len, True)
        op = mix.net.adapters[src].send_broadcast(cls.msg_len, now)
        op.cls = cls.name
        mix.generated_broadcasts += 1
        mix.class_generated[cls.name] += 1
        self._barrier_op = op

    def _start_phase(self, now: int) -> None:
        self.phase_start = now
        self._phase_left = self._phase_total
        for k, cl in self.closed_k.items():
            if cl.quota > 0:
                for s in self.sources[k]:
                    s.quota_left = cl.quota

    # ------------------------------------------------------------------
    # delivery side (the network's on_tail callback, fired during step)
    # ------------------------------------------------------------------
    def on_tail(self, node: int, pkt: Packet, now: int) -> None:
        meta = pkt.meta
        k = meta.get(_TAG_REQUEST)
        if k is not None:
            # request reached its directory home: schedule the reply
            cl = self.closed_k[k]
            self._due.setdefault(now + 1 + cl.service, []).append(
                (node, pkt.src, k, pkt.created))
            return
        tag = meta.get(_TAG_REPLY)
        if tag is not None:
            # reply reached the requester: transaction complete
            k, created = tag
            self.sources[k][node].outstanding -= 1
            self._complete(self.mix.classes[k].name, created, now)
            return
        k = meta.get(_TAG_STREAM)
        if k is not None:
            # a stream message's own delivery is its completion
            self.sources[k][pkt.src].outstanding -= 1
            self._complete(self.mix.classes[k].name, pkt.created, now)
            if self.closed_k[k].quota > 0 and self._phase_left:
                self._phase_left -= 1
                if not self._phase_left:
                    self._phase_done(now)
            return
        op = pkt.op
        if op is not None and op is self._barrier_op and op.complete:
            self._barrier_completed(now)

    def _phase_done(self, now: int) -> None:
        """Every phased message of this phase has been delivered."""
        if self._barrier_k is not None:
            self._barrier_at = now + 1
        else:
            self.phases_done += 1
            self._resume_at = now + 1 + self.wl.gap

    def _barrier_completed(self, now: int) -> None:
        # the phase's completion time runs from phase start to the
        # barrier broadcast reaching its last receiver
        self._complete(self.wl.barrier, self.phase_start, now)
        self.phases_done += 1
        self._barrier_op = None
        self._resume_at = now + 1 + self.wl.gap

    def _complete(self, name: str, created: int, now: int) -> None:
        self.completed[name] += 1
        if created >= self.warmup:
            self.comp_stats[name].add(float(now - created))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def class_block(self, name: str) -> Optional[Dict[str, object]]:
        """Completion-time summary keys for one class, or ``None`` for
        classes without closed-loop semantics (plain open-loop classes
        riding in the same workload)."""
        if name not in self.completed:
            return None
        stats = self.comp_stats[name]
        return {"completed": self.completed[name],
                "completion_mean": stats.mean if stats.n else 0.0,
                "completion_samples": stats.n}
