"""Analytical latency/saturation models.

The paper verified its simulator "extensively against analytical models
for the Spidergon and mesh topologies employing wormhole routing" [8] and
plots analysis curves alongside simulation in Fig. 10.  This package
provides the equivalent closed-form machinery:

* :mod:`repro.analysis.loads` -- exact per-resource load coefficients
  (injection channels, rim links, spokes, ejection channels) per unit
  injection rate, computed by enumerating the deterministic routes.
* :mod:`repro.analysis.wormhole` -- the M/G/1-style channel-waiting
  approximation shared by all models.
* :mod:`repro.analysis.models` -- latency predictions and saturation
  rates for Quarc, Spidergon and mesh/torus.
"""

from repro.analysis.loads import stage_coefficients, uniform_link_loads
from repro.analysis.models import (
    predict_broadcast_latency,
    predict_unicast_latency,
    saturation_rate,
)
from repro.analysis.wormhole import mg1_wait, utilisation

__all__ = [
    "stage_coefficients",
    "uniform_link_loads",
    "predict_unicast_latency",
    "predict_broadcast_latency",
    "saturation_rate",
    "mg1_wait",
    "utilisation",
]
