"""Exact per-resource load coefficients under the paper's workload.

For a network of size N under per-node message rate ``lambda`` (uniform
destinations, fraction ``beta`` broadcast, message length M flits), each
resource's utilisation is ``lambda * coefficient`` where the coefficient
is computed *exactly* by enumerating the deterministic routes:

* ``injection``  -- busiest local injection channel (flit-cycles/message);
  this is where Quarc's four queues beat Spidergon's one.
* ``rim``        -- busiest rim channel (CW/CCW are symmetric).
* ``cross``      -- busiest spoke channel; Spidergon's single spoke
  carries both turn directions, Quarc's doubled spokes split them
  (the edge-symmetry argument of Sec. 2.2).
* ``ejection``   -- busiest local ejection channel; Spidergon serialises
  all arrivals (including every broadcast relay absorption) through one.

The vertex symmetry of both topologies means per-class channel loads are
identical across nodes, so enumerating from a single source suffices; the
test-suite verifies this against a full enumeration.
"""

from __future__ import annotations

from typing import Dict

from repro.topologies.quarc import QuarcTopology
from repro.topologies.spidergon import SpidergonTopology

__all__ = ["stage_coefficients", "uniform_link_loads"]


def _quarc_coefficients(n: int, msg_len: int, beta: float) -> Dict[str, float]:
    topo = QuarcTopology(n)
    q = topo.q
    others = n - 1
    uni = 1.0 - beta
    M = float(msg_len)

    # --- injection: four queues; busiest quadrant queue ---------------
    # unicast split: right q, left q, xleft q, xright q-1 (of N-1);
    # broadcast: one branch packet per queue (xright absent when q == 1)
    quad_fracs = [q / others, q / others, q / others, (q - 1) / others]
    injection = max(uni * f + beta * 1.0 for f in quad_fracs) * M

    # --- rim links (exact enumeration; CW by symmetry) ------------------
    # unicast CW crossings per message from one source:
    cw_crossings = 0.0
    cross_r_crossings = 0.0
    for dst in range(n):
        if dst == 0:
            continue
        path = topo.path(0, dst)
        for a, b in zip(path, path[1:]):
            if b == (a + 1) % n:
                cw_crossings += 1.0 / others
            elif b == (a + n // 2) % n and topo.quadrant(0, dst) == "xright":
                cross_r_crossings += 1.0 / others
    # per-op broadcast crossings: RIGHT branch q CW hops + XRIGHT branch
    # q-1 CW hops after the spoke
    bc_cw = q + max(q - 1, 0)
    rim = (uni * cw_crossings + beta * bc_cw) * M

    # --- spokes: cross_r carries xright unicasts + one bcast branch ----
    # cross_l carries xleft unicasts (q of N-1) + one bcast branch; it is
    # the busier spoke since xleft covers q destinations vs q-1
    cross = (uni * (q / others) + beta * 1.0) * M

    # --- ejection: four per-ingress ports; busiest receives the RIGHT-
    # quadrant share of unicasts plus every broadcast's rim-CW deliveries
    ej_uni = q / others                     # arrivals via the CW ingress
    ej_bc = n * (q / others)                # N sources' ops, q/(N-1) via CW
    ejection = (uni * ej_uni + beta * ej_bc) * M

    return {"injection": injection, "rim": rim, "cross": cross,
            "ejection": ejection}


def _spidergon_coefficients(n: int, msg_len: int,
                            beta: float) -> Dict[str, float]:
    topo = SpidergonTopology(n)
    others = n - 1
    uni = 1.0 - beta
    M = float(msg_len)

    # --- injection: ONE queue takes everything; broadcast costs two
    # chain-start packets at the source
    injection = (uni * 1.0 + beta * 2.0) * M

    # --- rim links: unicast enumeration + relay chains ------------------
    cw_crossings = 0.0
    cross_crossings = 0.0
    for dst in range(n):
        if dst == 0:
            continue
        path = topo.path(0, dst)
        for a, b in zip(path, path[1:]):
            if b == (a + 1) % n:
                cw_crossings += 1.0 / others
            elif b == (a + n // 2) % n:
                cross_crossings += 1.0 / others
    # each broadcast's CW chain re-traverses ceil((N-1)/2) CW links
    c_cw = (n - 1 + 1) // 2
    rim = (uni * cw_crossings + beta * c_cw) * M

    # --- the single spoke ------------------------------------------------
    cross = (uni * cross_crossings + beta * 0.0) * M

    # --- ejection: ONE port absorbs unicasts AND every relay packet ----
    ejection = (uni * 1.0 + beta * (n - 1)) * M

    return {"injection": injection, "rim": rim, "cross": cross,
            "ejection": ejection}


def stage_coefficients(kind: str, n: int, msg_len: int,
                       beta: float = 0.0) -> Dict[str, float]:
    """Per-resource utilisation coefficients (see module docstring)."""
    if msg_len < 1:
        raise ValueError("message length must be >= 1")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    if kind == "quarc":
        return _quarc_coefficients(n, msg_len, beta)
    if kind == "spidergon":
        return _spidergon_coefficients(n, msg_len, beta)
    raise ValueError(f"no analytical model for kind {kind!r}")


def uniform_link_loads(kind: str, n: int) -> Dict[str, float]:
    """Average traversals of each link *class* per uniform unicast.

    Used by tests to verify edge symmetry claims: for the Quarc every
    class carries commensurate load; for the Spidergon the spoke carries
    the turn traffic of both directions.
    """
    topo = QuarcTopology(n) if kind == "quarc" else SpidergonTopology(n)
    counts: Dict[str, float] = {}
    pairs = n * (n - 1)
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            path = topo.path(s, d)
            for a, b in zip(path, path[1:]):
                if b == (a + 1) % n:
                    key = "cw"
                elif b == (a - 1) % n:
                    key = "ccw"
                else:
                    key = "cross"
                counts[key] = counts.get(key, 0.0) + 1.0 / pairs
    return counts
