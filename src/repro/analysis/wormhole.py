"""Shared wormhole queueing approximations.

Following the modelling style of Moadeli et al.'s Spidergon analysis [8],
each contended resource (injection channel, network channel, ejection
channel) is treated as an M/G/1-like server whose customers are whole
packets of deterministic service time ~M flit-cycles.  The mean waiting
time uses the Pollaczek-Khinchine form with deterministic service:

    W(rho) = rho * S * (1 + C_s^2) / (2 * (1 - rho))

with squared service variability ``C_s^2 = 0`` (fixed-length packets), so
``W = rho * S / (2 (1 - rho))``.  Past ``rho >= 1`` the wait is infinite
-- the saturation asymptote the latency figures show as a vertical knee.

This is an approximation, not an exact wormhole analysis: blocking in
wormhole networks is correlated across stages.  The reproduction uses it
the same way the paper uses its models -- to predict curve shapes,
low-load intercepts and saturation points, all of which the test-suite
cross-validates against the simulator.
"""

from __future__ import annotations

import math

__all__ = ["utilisation", "mg1_wait", "INFINITE_LATENCY"]

#: Returned by the predictors for loads at/po saturation.
INFINITE_LATENCY = math.inf


def utilisation(rate: float, coefficient: float) -> float:
    """Resource utilisation rho = rate * coefficient.

    ``coefficient`` is the expected flit-cycles the resource serves per
    generated message per node per cycle (see
    :func:`repro.analysis.loads.stage_coefficients`).
    """
    if rate < 0 or coefficient < 0:
        raise ValueError("rate and coefficient must be non-negative")
    return rate * coefficient

def mg1_wait(rho: float, service: float) -> float:
    """Mean M/G/1 waiting time with deterministic service ``service``.

    Returns ``inf`` for rho >= 1 (saturated server).
    """
    if service < 0:
        raise ValueError("service time must be non-negative")
    if rho < 0:
        raise ValueError("utilisation must be non-negative")
    if rho >= 1.0:
        return INFINITE_LATENCY
    return rho * service / (2.0 * (1.0 - rho))
