"""Closed-form latency predictions and saturation rates.

Latency decomposition for a wormhole unicast (cf. [8]):

    L(lambda) = t_adapter + W_inj + H * t_hop + (M - 1) + W_net + W_ej

with H the average hop count, one cycle per hop for the header,
``M - 1`` serialisation cycles for the rest of the worm, and W_* the
M/G/1 waits at the injection channel, along the network path (the
busiest-class wait weighted by path length) and at the ejection channel.

Broadcast:

* **Quarc** -- all four branches pipeline concurrently; completion is
  governed by the longest branch (q hops):
  ``L = t_adapter + W_inj + q * t_hop + (M - 1) + W_net + W_ej``.
* **Spidergon** -- the CW relay chain is sequential *and*
  store-and-forward at every hop: each of ceil((N-1)/2) segments costs a
  full packet time plus ejection/re-injection overhead:
  ``L = c_cw * (M + t_relay + W_rim + W_ej) + W_inj``.

These expressions reproduce the paper's qualitative claims exactly: the
order-of-magnitude broadcast gap (q + M vs (N/2) * M), the >=2x unicast
gap from the injection/ejection serialisation, and the collapse of
Spidergon's sustainable load as beta grows (its ejection coefficient
scales with beta * N).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.loads import stage_coefficients
from repro.analysis.wormhole import INFINITE_LATENCY, mg1_wait
from repro.topologies.mesh import MeshTopology
from repro.topologies.quarc import QuarcTopology
from repro.topologies.spidergon import SpidergonTopology
from repro.topologies.torus import TorusTopology

__all__ = ["saturation_rate", "predict_unicast_latency",
           "predict_broadcast_latency", "average_hops"]

#: adapter pipeline cycles (write controller + quadrant calc / queueing)
T_ADAPTER = 1.0
#: per-relay-hop overhead in the Spidergon broadcast chain (header
#: rewrite + re-injection handshake)
T_RELAY = 2.0


def average_hops(kind: str, n: int, cols: int = 0) -> float:
    """Mean shortest-route hops under uniform traffic."""
    if kind == "quarc":
        return QuarcTopology(n).average_hops()
    if kind == "spidergon":
        return SpidergonTopology(n).average_hops()
    if kind == "mesh":
        return MeshTopology(n, cols).average_hops()
    if kind == "torus":
        return TorusTopology(n, cols).average_hops()
    raise ValueError(f"unknown kind {kind!r}")


def saturation_rate(kind: str, n: int, msg_len: int,
                    beta: float = 0.0) -> float:
    """Injection rate at which the busiest resource reaches rho = 1."""
    coeffs = stage_coefficients(kind, n, msg_len, beta)
    worst = max(coeffs.values())
    if worst <= 0:
        raise ValueError("degenerate workload: zero load everywhere")
    return 1.0 / worst


def _stage_waits(coeffs: Dict[str, float], rate: float,
                 msg_len: int) -> Dict[str, float]:
    service = float(msg_len)
    return {name: mg1_wait(rate * c, service) for name, c in coeffs.items()}


def predict_unicast_latency(kind: str, n: int, msg_len: int, beta: float,
                            rate: float) -> float:
    """Mean unicast latency in cycles; ``inf`` at/past saturation."""
    coeffs = stage_coefficients(kind, n, msg_len, beta)
    waits = _stage_waits(coeffs, rate, msg_len)
    if any(w == INFINITE_LATENCY for w in waits.values()):
        return INFINITE_LATENCY
    hops = average_hops(kind, n)
    # network wait: contention at the dominant link class, felt once per
    # worm (downstream blocking is absorbed by the same wait)
    w_net = max(waits["rim"], waits["cross"])
    return (T_ADAPTER + waits["injection"] + hops + (msg_len - 1)
            + w_net + waits["ejection"])


def predict_broadcast_latency(kind: str, n: int, msg_len: int, beta: float,
                              rate: float) -> float:
    """Mean broadcast *completion* latency; ``inf`` at/past saturation."""
    coeffs = stage_coefficients(kind, n, msg_len, beta)
    waits = _stage_waits(coeffs, rate, msg_len)
    if any(w == INFINITE_LATENCY for w in waits.values()):
        return INFINITE_LATENCY
    if kind == "quarc":
        q = n // 4
        longest_branch = q  # RIGHT/LEFT/XLEFT branches are all q hops
        return (T_ADAPTER + waits["injection"] + longest_branch
                + (msg_len - 1) + waits["rim"] + waits["ejection"])
    if kind == "spidergon":
        c_cw = (n - 1 + 1) // 2            # sequential CW chain length
        per_segment = (msg_len + T_RELAY + waits["rim"] + waits["ejection"])
        return T_ADAPTER + waits["injection"] + c_cw * per_segment
    raise ValueError(f"no broadcast model for kind {kind!r}")
