"""Deterministic fault injection: plans, live fault state, rerouting
and drop accounting.

The paper's networks are perfect and regular; any chip-scale
interconnect must survive link and router failures.  This module adds a
*deterministic* fault model on top of the unmodified cycle semantics:

* :class:`FaultPlan` -- a parsed fault schedule.  The plan grammar is a
  ``;``-separated list of clauses, each ``kind:params@cycle=T``:

  ===================================  ====================================
  clause                               effect at cycle ``T``
  ===================================  ====================================
  ``link:src=3,dst=4@cycle=200``       the directed link(s) 3 -> 4 go down
  ``links:down=3@cycle=200``           3 seeded-random links go down
  ``router:node=5@cycle=0``            router 5 (and all its links) dies
  ``routers:down=2@cycle=400``         2 seeded-random routers die
  ===================================  ====================================

  Random picks are resolved against the concrete network at install
  time under the reserved ``fault:`` RNG namespace: candidate labels
  are key-sorted by ``derive_seed(derive_seed(root_seed,
  "fault:{i}:{kind}"), label)`` and the ``K`` smallest keys win --
  a pure function of ``(root seed, clause index, topology)``, with no
  dependence on ``random.Random`` shuffle internals.

* :class:`FaultState` -- the per-network live state every backend
  consults: dead nodes/ports, the live-graph distance table, the doomed
  packet set, and the conservation counters.  All three backends
  (reference, active set, array + C kernel) share this object through
  two seams -- ``OutPort.dead`` (a dead port never grants; the array
  engine mirrors it by pointing the port's credit rows at its
  always-full anchor column) and ``Router.route`` (the fault-aware
  routing dispatcher) -- so degraded-mode behaviour is byte-identical
  across backends by construction.

Rerouting vs drop policy
------------------------
For unicast (and Spidergon relay) headers the fault-aware route is:

1. destination dead or unreachable in the live graph -> **drop**;
2. the topology's own route usable (port alive, downstream node can
   still reach the destination) -> take it (zero behaviour change on
   the fault-free prefix of a run);
3. otherwise **detour**: the first alive non-ejection port fed by this
   lane whose downstream node is *strictly closer* to the destination
   in the live graph (strict decrease rules out livelock);
4. otherwise **drop**.

Collective branches (broadcast/multicast) never detour -- the branch
semantics encode the path -- so a dead base port drops the branch.

Dropping steers the worm into the lane's ejection port with the packet
id recorded in ``doomed``; the delivery path then counts the tail as
dropped instead of delivered.  A lane with no live ejection feeder
(local injection queues) cannot drop, so its doomed head is left stuck
-- it shows up as ``in_flight``, and flit conservation
(``injected == ejected + purged + in_flight``) still holds exactly.

Accounting contract
-------------------
``injected_flits`` counts every flit entering a network queue
(including Spidergon relay regeneration); ``ejected_flits`` every flit
leaving through an ejection port (delivered or dropped);
``purged_flits`` every flit removed when a router dies (packets with a
flit -- or a latched wormhole -- in a dead router are purged
network-wide).  Message drops are counted once per packet (unicast) or
once per collective operation, with at-source drops split out;
messages whose source node is dead are *suppressed*, never generated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.noc.packet import RELAY, UNICAST
from repro.sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.buffers import FlitBuffer
    from repro.noc.network import Network
    from repro.noc.packet import CollectiveOp, Packet
    from repro.noc.ports import OutPort
    from repro.noc.router import Router

__all__ = ["FaultClause", "FaultPlan", "FaultState", "UNREACHABLE"]

#: live-graph distance sentinel: no path in the surviving topology
UNREACHABLE = 1 << 30

#: clause kind -> required parameter names (also the label order)
_KINDS = {
    "link": ("src", "dst"),
    "links": ("down",),
    "router": ("node",),
    "routers": ("down",),
}


class FaultClause:
    """One parsed plan clause: ``kind:params@cycle=T``."""

    __slots__ = ("kind", "cycle", "params")

    def __init__(self, kind: str, cycle: int,
                 params: Tuple[Tuple[str, int], ...]):
        self.kind = kind
        self.cycle = cycle
        self.params = params

    def param(self, name: str) -> int:
        return dict(self.params)[name]

    def label(self) -> str:
        body = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}:{body}@cycle={self.cycle}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultClause {self.label()}>"


class FaultPlan:
    """A validated fault schedule (grammar in the module docstring).

    Parsing is purely syntactic -- node/link existence is checked when
    the plan is resolved against a concrete network
    (:meth:`FaultState` construction), so a plan string can live in a
    topology-agnostic :class:`~repro.traffic.workload.WorkloadSpec`.
    """

    __slots__ = ("clauses",)

    def __init__(self, clauses: Tuple[FaultClause, ...]):
        if not clauses:
            raise ValueError("a fault plan needs at least one clause")
        self.clauses = tuple(clauses)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        clauses = []
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            body, sep, tail = raw.rpartition("@")
            if not sep or not tail.startswith("cycle="):
                raise ValueError(
                    f"fault clause {raw!r}: expected '...@cycle=T'")
            cycle = cls._int(raw, "cycle", tail[len("cycle="):])
            kind, sep, params_text = body.partition(":")
            if not sep or kind not in _KINDS:
                raise ValueError(
                    f"fault clause {raw!r}: unknown kind {kind!r} "
                    f"(expected one of {sorted(_KINDS)})")
            got = {}
            for item in params_text.split(","):
                key, sep, val = item.partition("=")
                if not sep or key in got:
                    raise ValueError(
                        f"fault clause {raw!r}: bad parameter {item!r}")
                got[key] = cls._int(raw, key, val)
            required = _KINDS[kind]
            if set(got) != set(required):
                raise ValueError(
                    f"fault clause {raw!r}: {kind!r} takes exactly "
                    f"{required}")
            if "down" in got and got["down"] < 1:
                raise ValueError(
                    f"fault clause {raw!r}: down must be >= 1")
            clauses.append(FaultClause(
                kind, cycle, tuple((k, got[k]) for k in required)))
        if not clauses:
            raise ValueError(f"empty fault plan {text!r}")
        return cls(tuple(clauses))

    @staticmethod
    def _int(clause: str, name: str, val: str) -> int:
        try:
            out = int(val)
        except ValueError:
            raise ValueError(
                f"fault clause {clause!r}: {name} must be an integer "
                f"(got {val!r})") from None
        if out < 0:
            raise ValueError(
                f"fault clause {clause!r}: {name} must be >= 0")
        return out

    def label(self) -> str:
        """Canonical plan text (parses back to an equal plan)."""
        return ";".join(c.label() for c in self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.label()!r}>"


class FaultState:
    """Live fault state for one network, shared by every backend.

    Construction resolves the plan's clauses against the concrete
    network (random picks via the ``fault:`` RNG namespace) into a
    schedule of concrete events; :meth:`install` hooks the state into
    the network's routing seam.  Backends apply due events through
    :meth:`repro.sim.backend.SimBackend.apply_faults`, which funnels
    into :meth:`apply` here (the array engine wraps it in a
    materialize/resync pair and re-points its credit rows).
    """

    def __init__(self, plan: FaultPlan, net: "Network", root_seed: int):
        self.plan = plan
        self.net = net
        self.root_seed = root_seed
        self.dead_nodes: Set[int] = set()
        #: dead output ports in kill order (ejection ports included
        #: when their router died)
        self.dead_ports: List["OutPort"] = []
        self._dead_port_ids: Set[int] = set()
        #: pids of packets that will be dropped, not delivered
        self.doomed: Set[int] = set()
        #: pids whose drop has been counted (a packet can hit both the
        #: tail-drop and the purge path; it is one dropped message)
        self._counted_drops: Set[int] = set()
        #: applied event records (JSON-ready), in application order
        self.applied: List[Dict[str, object]] = []
        # flit-conservation counters
        self.injected_flits = 0
        self.ejected_flits = 0
        self.purged_flits = 0
        # message-level accounting
        self.dropped_unicasts = 0
        self.dropped_collectives = 0
        self.dropped_at_source = 0
        self.dropped_tails = 0
        self.suppressed_msgs = 0
        self._events = self._resolve(plan, net, root_seed)
        self.dist: List[List[int]] = []
        self._recompute_dist()

    # ------------------------------------------------------------------
    # plan resolution (install time, before any event applies)
    # ------------------------------------------------------------------
    @staticmethod
    def _port_label(port: "OutPort") -> str:
        return f"{port.router.node}.{port.name}"

    def _resolve(self, plan: FaultPlan, net: "Network",
                 root_seed: int) -> List[Dict[str, object]]:
        n = net.n
        taken_ports: Set[str] = set()
        taken_nodes: Set[int] = set()

        def check_node(clause: FaultClause, value: int) -> int:
            if value >= n:
                raise ValueError(
                    f"fault clause {clause.label()!r}: node {value} out "
                    f"of range for n={n}")
            return value

        def take_node(node: int) -> None:
            taken_nodes.add(node)
            for p in net.iter_ports():
                if p.router.node == node or any(
                        d is not None and d.router is not None
                        and d.router.node == node for d in p.down):
                    taken_ports.add(self._port_label(p))

        events: List[Dict[str, object]] = []
        for i, cl in enumerate(plan.clauses):
            ports: List["OutPort"] = []
            nodes: List[int] = []
            if cl.kind == "link":
                src = check_node(cl, cl.param("src"))
                dst = check_node(cl, cl.param("dst"))
                ports = [p for p in net.routers[src].out_ports
                         if not p.is_ejection and any(
                             d is not None and d.router is not None
                             and d.router.node == dst for d in p.down)]
                if not ports:
                    raise ValueError(
                        f"fault clause {cl.label()!r}: no link "
                        f"{src}->{dst} in {net.name!r}")
            elif cl.kind == "links":
                k = cl.param("down")
                cands = [(self._port_label(p), p)
                         for p in net.iter_ports()
                         if not p.is_ejection
                         and self._port_label(p) not in taken_ports]
                if k > len(cands):
                    raise ValueError(
                        f"fault clause {cl.label()!r}: asks for {k} "
                        f"links, only {len(cands)} remain")
                skey = derive_seed(root_seed, f"fault:{i}:links")
                cands.sort(key=lambda lp: (derive_seed(skey, lp[0]),
                                           lp[0]))
                ports = [p for _, p in cands[:k]]
            elif cl.kind == "router":
                nodes = [check_node(cl, cl.param("node"))]
            else:  # routers
                k = cl.param("down")
                cands2 = [v for v in range(n) if v not in taken_nodes]
                if k > len(cands2):
                    raise ValueError(
                        f"fault clause {cl.label()!r}: asks for {k} "
                        f"routers, only {len(cands2)} remain")
                skey = derive_seed(root_seed, f"fault:{i}:routers")
                cands2.sort(key=lambda v: (derive_seed(skey, f"node{v}"),
                                           v))
                nodes = sorted(cands2[:k])
            for p in ports:
                taken_ports.add(self._port_label(p))
            for v in nodes:
                take_node(v)
            targets = ([self._port_label(p) for p in ports]
                       + [f"node{v}" for v in nodes])
            events.append({"cycle": cl.cycle, "kind": cl.kind,
                           "label": cl.label(), "ports": ports,
                           "nodes": nodes, "targets": targets})
        events.sort(key=lambda ev: ev["cycle"])  # stable: clause order
        return events

    def events_by_cycle(self) -> Dict[int, List[Dict[str, object]]]:
        """Resolved events grouped by effect cycle (ascending keys)."""
        out: Dict[int, List[Dict[str, object]]] = {}
        for ev in self._events:
            out.setdefault(int(ev["cycle"]), []).append(ev)
        return out

    # ------------------------------------------------------------------
    # installation + event application
    # ------------------------------------------------------------------
    def install(self, net: "Network") -> None:
        """Hook this state into the network's routing seam."""
        net.fault_state = self
        for r in net.routers:
            r.fstate = self

    def apply(self, net: "Network",
              events: List[Dict[str, object]]) -> None:
        """Kill the links/routers of ``events`` (object-graph form).

        Array engines call this between a ``materialize`` / ``resync``
        pair so the purge and the routing changes land on the canonical
        object state, then mirror the dead ports into their arrays.
        """
        new_nodes: List[int] = []
        for ev in events:
            for node in ev["nodes"]:
                if node in self.dead_nodes:
                    continue
                self.dead_nodes.add(node)
                new_nodes.append(node)
                for p in net.routers[node].out_ports:
                    self._kill_port(p)
                for p in net.iter_ports():
                    if any(d is not None and d.router is not None
                           and d.router.node == node for d in p.down):
                        self._kill_port(p)
            for p in ev["ports"]:
                self._kill_port(p)
            self.applied.append({"cycle": ev["cycle"],
                                 "kind": ev["kind"],
                                 "targets": list(ev["targets"])})
        if new_nodes:
            self._purge(net, new_nodes)
        self._recompute_dist()

    def _kill_port(self, port: "OutPort") -> None:
        if id(port) in self._dead_port_ids:
            return
        self._dead_port_ids.add(id(port))
        port.dead = True
        self.dead_ports.append(port)

    def _purge(self, net: "Network", new_nodes: List[int]) -> None:
        """Remove every packet with a flit (or a latched wormhole) in a
        newly dead router, network-wide, counting the flits purged."""
        doomed_now: Dict[int, "Packet"] = {}
        for node in new_nodes:
            for b in net.routers[node].in_bufs:
                for pkt, _f in b.q:
                    doomed_now[pkt.pid] = pkt
                if b.cur_pkt is not None:
                    doomed_now[b.cur_pkt.pid] = b.cur_pkt
        if not doomed_now:
            return
        for b in net.iter_buffers():
            q = b.q
            if q and any(p.pid in doomed_now for p, _f in q):
                kept = [(p, f) for p, f in q if p.pid not in doomed_now]
                removed = len(q) - len(kept)
                q.clear()
                q.extend(kept)
                self.purged_flits += removed
                r = b.router
                if r is not None:
                    r.flits -= removed
                if not q:
                    for port in b.fed:
                        port.live_feeders -= 1
            if b.cur_pkt is not None and b.cur_pkt.pid in doomed_now:
                port = b.cur_out
                if port is not None and port.owner[b.cur_vc] is b:
                    port.owner[b.cur_vc] = None
                b.clear_switching()
        for pid in sorted(doomed_now):
            self._doom(doomed_now[pid])
            self._count_drop(doomed_now[pid])

    # ------------------------------------------------------------------
    # live-graph reachability
    # ------------------------------------------------------------------
    def _recompute_dist(self) -> None:
        net = self.net
        n = net.n
        adj: List[List[int]] = [[] for _ in range(n)]
        for r in net.routers:
            if r.node in self.dead_nodes:
                continue
            for p in r.out_ports:
                if p.dead or p.is_ejection:
                    continue
                for d in p.down:
                    if d is None or d.router is None:
                        continue
                    b = d.router.node
                    if b not in self.dead_nodes and b not in adj[r.node]:
                        adj[r.node].append(b)
        dist = [[UNREACHABLE] * n for _ in range(n)]
        for s in range(n):
            if s in self.dead_nodes:
                continue
            row = dist[s]
            row[s] = 0
            frontier = [s]
            d = 0
            while frontier:
                d += 1
                nxt: List[int] = []
                for u in frontier:
                    for v in adj[u]:
                        if row[v] > d:
                            row[v] = d
                            nxt.append(v)
                frontier = nxt
        self.dist = dist

    @staticmethod
    def _next_node(port: "OutPort") -> Optional[int]:
        for d in port.down:
            if d is not None and d.router is not None:
                return d.router.node
        return None

    def node_dead(self, node: int) -> bool:
        return node in self.dead_nodes

    def src_cannot_reach(self, src: int, dst: int) -> bool:
        """True when no live path src -> dst exists (drop at source
        instead of parking the packet in an injection queue forever)."""
        return (dst in self.dead_nodes
                or src != dst and self.dist[src][dst] >= UNREACHABLE)

    # ------------------------------------------------------------------
    # fault-aware routing (Router.route dispatches here)
    # ------------------------------------------------------------------
    def route(self, router: "Router", buf: "FlitBuffer",
              pkt: "Packet") -> Tuple["OutPort", bool]:
        base_port, deliver = router.route_head(buf, pkt)
        if pkt.pid in self.doomed:
            return self._drop_route(buf, base_port, deliver, pkt,
                                    count=False)
        if pkt.traffic == UNICAST or pkt.traffic == RELAY:
            dst = pkt.dst
            node = router.node
            dist = self.dist
            if dst in self.dead_nodes or dist[node][dst] >= UNREACHABLE:
                return self._drop_route(buf, base_port, deliver, pkt,
                                        count=True)
            # a detour can leave a packet on an ingress lane the base
            # route was never meant for (e.g. DOR's Y-lanes cannot turn
            # back into X), so the base port must actually be wired to
            # this lane to be usable
            if not base_port.dead and base_port in buf.fed:
                if base_port.is_ejection:
                    return base_port, deliver
                nxt = self._next_node(base_port)
                if nxt is not None and dist[nxt][dst] < UNREACHABLE:
                    return base_port, deliver
            here = dist[node][dst]
            for port in buf.fed:
                if port.dead or port is base_port or port.is_ejection:
                    continue
                nxt = self._next_node(port)
                if nxt is not None and dist[nxt][dst] < here:
                    return port, False
            return self._drop_route(buf, base_port, deliver, pkt,
                                    count=True)
        # collective branch: the path is encoded in the branch itself,
        # so a dead base port kills the branch -- no detours.  The one
        # exception is a source-queue ingress (no ejection feeder, so no
        # drop path either): a software-collective segment there is
        # destination-routed like a unicast, and detouring it beats
        # wedging the node's injection queue forever.
        if base_port.dead or base_port not in buf.fed:
            if not any(p.is_ejection and not p.dead for p in buf.fed):
                dst = pkt.dst
                dist = self.dist
                if dst not in self.dead_nodes \
                        and dist[router.node][dst] < UNREACHABLE:
                    here = dist[router.node][dst]
                    for port in buf.fed:
                        if port.dead or port is base_port \
                                or port.is_ejection:
                            continue
                        nxt = self._next_node(port)
                        if nxt is not None and dist[nxt][dst] < here:
                            return port, False
            return self._drop_route(buf, base_port, deliver, pkt,
                                    count=True)
        return base_port, deliver

    def _drop_route(self, buf: "FlitBuffer", base_port: "OutPort",
                    deliver: bool, pkt: "Packet",
                    count: bool) -> Tuple["OutPort", bool]:
        eject = None
        for port in buf.fed:
            if port.is_ejection and not port.dead:
                eject = port
                break
        if eject is None:
            # no live drop path from this lane: leave the head stuck
            # (it stays visible as in_flight) with NO side effects, so
            # repeated route calls on a blocked head stay idempotent
            return base_port, deliver
        if count:
            self._doom(pkt)
        return eject, False

    def _doom(self, pkt: "Packet") -> None:
        """Mark a packet drop-steered.  Deliberately *not* where drops
        are counted: routing is evaluated lazily by the reference loop
        but eagerly by caching backends, so doom time can differ by a
        cycle at the horizon boundary.  Counting happens at movement
        events (tail reaching a sink, purge), which are byte-identical
        across backends."""
        self.doomed.add(pkt.pid)

    def _count_drop(self, pkt: "Packet") -> None:
        if pkt.pid in self._counted_drops:
            return
        self._counted_drops.add(pkt.pid)
        op = pkt.op
        if op is not None:
            if not op.dropped:
                op.dropped = True
                self.dropped_collectives += 1
        else:
            self.dropped_unicasts += 1

    # ------------------------------------------------------------------
    # delivery-path + source-side accounting hooks
    # ------------------------------------------------------------------
    def on_tail_dropped(self, pkt: "Packet", node: int,
                        now: int) -> None:
        """A doomed packet's tail reached an ejection sink."""
        self.dropped_tails += 1
        self._count_drop(pkt)

    def source_drop_unicast(self) -> None:
        self.dropped_unicasts += 1
        self.dropped_at_source += 1

    def source_drop_branch(self, op: Optional["CollectiveOp"]) -> None:
        self.dropped_at_source += 1
        if op is not None and not op.dropped:
            op.dropped = True
            self.dropped_collectives += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def dropped_msgs(self) -> int:
        return self.dropped_unicasts + self.dropped_collectives

    def extra_block(self) -> Dict[str, object]:
        """The JSON-ready ``extra["faults"]`` block for RunSummary."""
        return {
            "plan": self.plan.label(),
            "events": [dict(rec) for rec in self.applied],
            "scheduled_events": len(self._events),
            "dead_links": sum(1 for p in self.dead_ports
                              if not p.is_ejection),
            "dead_routers": sorted(self.dead_nodes),
            "injected_flits": self.injected_flits,
            "ejected_flits": self.ejected_flits,
            "purged_flits": self.purged_flits,
            "dropped_msgs": self.dropped_msgs,
            "dropped_unicasts": self.dropped_unicasts,
            "dropped_collectives": self.dropped_collectives,
            "dropped_at_source": self.dropped_at_source,
            "dropped_tails": self.dropped_tails,
            "suppressed_msgs": self.suppressed_msgs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultState dead_routers={sorted(self.dead_nodes)} "
                f"dead_links={len(self.dead_ports)} "
                f"doomed={len(self.doomed)}>")
