"""Setup shim: the offline environment lacks the `wheel` package, so
PEP-517 editable installs fail; `pip install -e . --no-build-isolation`
falls back to this legacy path (setup.cfg/pyproject carry the metadata)."""
from setuptools import setup

setup()
