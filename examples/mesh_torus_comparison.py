#!/usr/bin/env python
"""The paper's future work: Quarc vs mesh and torus (Sec. 4).

"Our next objective is to compare the performance of the Quarc against
other widely used NoC architectures such as mesh and torus."

Runs the same workload over all four architectures at N=16 and reports
unicast latency, broadcast completion and hop statistics.  The
mesh/torus use XY dimension-order routing with a one-port adapter and
*software* broadcast (N-1 serialised unicasts) -- the realistic baseline
the Quarc's hardware broadcast competes against.

Every run goes through :class:`~repro.sim.session.SimulationSession`
(via ``run_point``), so the workload is a scenario spec: pass
``pattern="transpose"`` or ``arrival="bursty:on=0.3,len=8"`` to repeat
the comparison under adversarial or bursty traffic.

Run:  python examples/mesh_torus_comparison.py
"""

from repro.analysis.models import average_hops
from repro.experiments.latency import run_point
from repro.traffic.workload import WorkloadSpec

N = 16
M = 8
BETA = 0.03
RATE = 0.008


def main(cycles: int = 8_000, warmup: int = 2_000,
         pattern: str = "uniform", arrival: str = "bernoulli",
         backend: str = "active") -> None:
    print(f"N={N}, M={M}, beta={BETA:g}, rate={RATE} msg/node/cycle "
          f"(pattern={pattern}, arrival={arrival})\n")
    hdr = (f"{'NoC':<10} {'avg hops':>8} {'unicast lat':>11} "
           f"{'bcast lat':>10} {'accepted':>9}")
    print(hdr)
    print("-" * len(hdr))
    rows = []
    for kind in ("quarc", "spidergon", "mesh", "torus"):
        spec = WorkloadSpec(kind=kind, n=N, msg_len=M, beta=BETA,
                            rate=RATE, cycles=cycles, warmup=warmup,
                            seed=3, pattern=pattern, arrival=arrival)
        s = run_point(spec, backend=backend)
        rows.append((kind, s))
        print(f"{kind:<10} {average_hops(kind, N):>8.2f} "
              f"{s.unicast_mean:>10.1f}c {s.bcast_mean:>9.1f}c "
              f"{s.accepted_rate:>9.4f}")

    quarc = dict(rows)["quarc"]
    print("\nbroadcast completion relative to Quarc:")
    for kind, s in rows:
        if kind != "quarc" and s.bcast_mean > 0:
            print(f"  {kind:<10} {s.bcast_mean / quarc.bcast_mean:5.1f}x "
                  f"slower")
    print("\nthe torus beats the mesh (wraparound halves hop counts), but"
          "\nboth serialise broadcast through one port -- the Quarc's true"
          "\nbroadcast wins by the largest margin, as the paper predicts.")


if __name__ == "__main__":
    main()
