#!/usr/bin/env python
"""Quickstart: the low-level adapter API, then a scenario-driven run.

Part 1 demonstrates the three public entry points a downstream user
needs for hand-crafted traffic: ``build_network``, the adapter ``send*``
API and the shared latency collector (drained through a pluggable
simulation backend).

Part 2 runs the same network under a *named workload scenario* through
:class:`~repro.sim.session.SimulationSession` -- the entry point every
experiment, benchmark and CLI command uses (``repro scenarios list``
enumerates the registry).

Run:  python examples/quickstart.py
"""

from repro import UNICAST, Packet, build_network
from repro.core.collector import LatencyCollector
from repro.sim.backend import make_backend
from repro.sim.session import RunConfig, SimulationSession
from repro.traffic.workload import WorkloadSpec


def main(cycles: int = 4_000, warmup: int = 1_000) -> None:
    # 1. build a network, hand-craft a little traffic ---------------------
    collector = LatencyCollector()
    net, topo = build_network("quarc", 8, collector=collector)
    print(f"built {net.name} with {net.n} nodes, "
          f"diameter {topo.diameter()}, avg hops {topo.average_hops():.2f}")

    tails = []
    net.on_tail = lambda node, pkt, now: tails.append((pkt, node, now))
    for src, dst in [(0, 3), (0, 4), (5, 1), (2, 6)]:
        pkt = Packet(src, dst, size=6, traffic=UNICAST)
        net.adapters[src].send(pkt, now=0)
    op = net.adapters[7].send_broadcast(size=6, now=0)

    # drain through a simulation backend (the "active" engine skips the
    # provably-dead work while producing identical results)
    drained = make_backend("active", net).drain()
    print(f"network drained in {drained} cycles\n")

    print("unicast deliveries (latency = hops + M - 1 at zero load):")
    for pkt, node, now in tails:
        if pkt.traffic == UNICAST:
            route = " -> ".join(map(str, topo.path(pkt.src, pkt.dst)))
            print(f"  {pkt.src} -> {pkt.dst}: {now - pkt.created:3d} "
                  f"cycles  (route {route})")
    print(f"broadcast from node 7: completed in "
          f"{op.completion_latency} cycles")
    print(f"collector: {collector.delivered_unicast} unicasts, "
          f"{collector.completed_collective} collective ops, "
          f"mean unicast latency {collector.unicast_mean:.1f} cycles\n")

    # 2. the same architecture under a named workload scenario ------------
    spec = WorkloadSpec(kind="quarc", n=8, msg_len=6, beta=0.05,
                        rate=0.01, cycles=cycles, warmup=warmup, seed=7,
                        pattern="hotspot:node=0,p=0.25",
                        arrival="bursty:on=0.3,len=6")
    summary = SimulationSession(
        RunConfig(spec=spec, backend="active")).run()
    print(f"scenario run [{spec.label()}]:")
    print(f"  {summary.delivered_msgs} messages delivered, "
          f"mean unicast latency {summary.unicast_mean:.1f} cycles, "
          f"mean broadcast completion {summary.bcast_mean:.1f} cycles")


if __name__ == "__main__":
    main()
