#!/usr/bin/env python
"""Quickstart: build an 8-node Quarc NoC, send traffic, read latencies.

Demonstrates the three public entry points a downstream user needs:
``build_network``, the adapter ``send*`` API and the shared latency
collector.

Run:  python examples/quickstart.py
"""

from repro import BROADCAST, Packet, UNICAST, build_network
from repro.core.collector import LatencyCollector


def main() -> None:
    # 1. build a network ------------------------------------------------
    collector = LatencyCollector()
    net, topo = build_network("quarc", 8, collector=collector)
    print(f"built {net.name} with {net.n} nodes, "
          f"diameter {topo.diameter()}, avg hops {topo.average_hops():.2f}")

    # 2. a few unicasts --------------------------------------------------
    tails = []
    net.on_tail = lambda node, pkt, now: tails.append((pkt, node, now))
    for src, dst in [(0, 3), (0, 4), (5, 1), (2, 6)]:
        pkt = Packet(src, dst, size=6, traffic=UNICAST)
        net.adapters[src].send(pkt, now=0)

    # 3. one broadcast ---------------------------------------------------
    op = net.adapters[7].send_broadcast(size=6, now=0)

    # 4. run until the network drains -------------------------------------
    cycles = net.drain()
    print(f"network drained in {cycles} cycles\n")

    print("unicast deliveries (latency = hops + M - 1 at zero load):")
    for pkt, node, now in tails:
        if pkt.traffic == UNICAST:
            print(f"  {pkt.src} -> {pkt.dst}: {now - pkt.created:3d} cycles"
                  f"  (route {' -> '.join(map(str, topo.path(pkt.src, pkt.dst)))})")

    print(f"\nbroadcast from node 7: completed in "
          f"{op.completion_latency} cycles")
    for node in sorted(op.deliveries):
        print(f"  node {node} received at cycle {op.deliveries[node]}")

    print(f"\ncollector: {collector.delivered_unicast} unicasts, "
          f"{collector.completed_collective} collective ops, "
          f"mean unicast latency {collector.unicast_mean:.1f} cycles")


if __name__ == "__main__":
    main()
