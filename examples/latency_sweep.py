#!/usr/bin/env python
"""A miniature Fig.-9-style latency/load sweep with an ASCII plot.

Sweeps injection rate on Quarc and Spidergon (N=16, M=16, beta=5%) and
renders latency-vs-load curves in the terminal, including the analytical
model's saturation estimate for context.

Run:  python examples/latency_sweep.py
"""

from repro.analysis import saturation_rate
from repro.experiments.ascii_plot import ascii_curves
from repro.experiments.csvout import format_table
from repro.experiments.figures import curves_from_rows, latency_rows
from repro.experiments.sweep import compare_networks

N, M, BETA = 16, 16, 0.05


def main() -> None:
    rates = [round(r * 0.004, 4) for r in range(1, 6)]
    print(f"sweeping N={N} M={M} beta={BETA:g} at rates {rates}")
    for kind in ("quarc", "spidergon"):
        print(f"  analytic saturation ({kind}): "
              f"{saturation_rate(kind, N, M, BETA):.4f} msg/node/cycle")

    results = compare_networks(N, M, BETA, rates=rates,
                               cycles=8_000, warmup=2_000, verbose=True)
    rows = latency_rows(results, config_label=f"N={N} M={M}")

    print()
    print(format_table(rows, columns=["noc", "rate", "unicast_lat",
                                      "bcast_lat", "accepted",
                                      "saturated"]))
    for metric, label in (("unicast_lat", "unicast"),
                          ("bcast_lat", "broadcast")):
        print()
        print(ascii_curves(curves_from_rows(rows, metric),
                           title=f"{label} latency vs offered load"))


if __name__ == "__main__":
    main()
