#!/usr/bin/env python
"""A miniature Fig.-9-style latency/load sweep with an ASCII plot.

Sweeps injection rate on Quarc and Spidergon (N=16, M=16, beta=5%) and
renders latency-vs-load curves in the terminal, including the analytical
model's saturation estimate for context.  Every point runs through
:class:`~repro.sim.session.SimulationSession` via ``compare_networks``,
so the sweep accepts a workload scenario: pass a different
``pattern``/``arrival`` spec string (see ``repro scenarios list``) to
re-ask the paper's question under hotspot or bursty traffic.

Run:  python examples/latency_sweep.py
"""

from repro.analysis import saturation_rate
from repro.experiments.ascii_plot import ascii_curves
from repro.experiments.csvout import format_table
from repro.experiments.figures import curves_from_rows, latency_rows
from repro.experiments.sweep import compare_networks

N, M, BETA = 16, 16, 0.05


def main(cycles: int = 8_000, warmup: int = 2_000, points: int = 5,
         pattern: str = "uniform", arrival: str = "bernoulli",
         backend: str = "active") -> None:
    rates = [round(r * 0.004, 4) for r in range(1, points + 1)]
    print(f"sweeping N={N} M={M} beta={BETA:g} at rates {rates} "
          f"(pattern={pattern}, arrival={arrival})")
    for kind in ("quarc", "spidergon"):
        print(f"  analytic saturation ({kind}): "
              f"{saturation_rate(kind, N, M, BETA):.4f} msg/node/cycle")

    results = compare_networks(N, M, BETA, rates=rates,
                               cycles=cycles, warmup=warmup, verbose=True,
                               backend=backend, pattern=pattern,
                               arrival=arrival)
    rows = latency_rows(results, config_label=f"N={N} M={M}")

    print()
    print(format_table(rows, columns=["noc", "rate", "unicast_lat",
                                      "bcast_lat", "accepted",
                                      "saturated"]))
    for metric, label in (("unicast_lat", "unicast"),
                          ("bcast_lat", "broadcast")):
        print()
        print(ascii_curves(curves_from_rows(rows, metric),
                           title=f"{label} latency vs offered load"))


if __name__ == "__main__":
    main()
