#!/usr/bin/env python
"""BRCP multicast with bitstring targeting (Sec. 2.5.3 + Fig. 7).

Shows the whole multicast stack working together:

1. the transceiver partitions targets by quadrant and builds per-branch
   bitstrings (bit h = node at hop-distance h along the branch);
2. the switches clone flits only at targeted nodes;
3. the bit-exact codec round-trips the same header through the 34-bit
   wire format, demonstrating multi-flit headers when bitstrings spill.

Run:  python examples/multicast_demo.py
"""

from repro import MULTICAST, FlitCodec, build_network
from repro.core.collector import LatencyCollector
from repro.core.quadrant import QuadrantCalculator
from repro.sim.backend import make_backend
from repro.topologies.quarc import QuarcTopology

N = 16
SRC = 0
TARGETS = [2, 5, 8, 11, 14]
SIZE = 6


def main() -> None:
    topo = QuarcTopology(N)
    calc = QuadrantCalculator(SRC, N)

    print(f"multicast from node {SRC} to {TARGETS} on a {N}-node Quarc\n")
    print("transceiver's view (quadrant calculator):")
    for t in TARGETS:
        quad, hops = calc.classify(t)
        print(f"  node {t:2d}: quadrant {quad:<7s} hop-distance {hops}"
              f"  (route {' -> '.join(map(str, topo.path(SRC, t)))})")

    # run it (drained through the optimized simulation backend -- same
    # engine the session layer selects with backend="active")
    collector = LatencyCollector()
    net, _ = build_network("quarc", N, collector=collector)
    op = net.adapters[SRC].send_multicast(TARGETS, SIZE, now=0)
    make_backend("active", net).drain()

    print(f"\ncompleted in {op.completion_latency} cycles; deliveries:")
    for node in sorted(op.deliveries):
        print(f"  node {node:2d} at cycle {op.deliveries[node]}")
    assert sorted(op.deliveries) == sorted(TARGETS)
    skipped = set(range(1, N)) - set(TARGETS)
    print(f"nodes {sorted(skipped)} forwarded flits without absorbing\n")

    # the same header on the wire
    codec = FlitCodec(32)
    bits = 0
    for t in TARGETS:
        if calc.quadrant(t) == "right":
            bits |= 1 << calc.hop_distance(t)
    flits = codec.encode_header(dst=4, src=SRC, length=SIZE,
                                traffic=MULTICAST, bitstring=bits)
    print(f"RIGHT-branch header on the wire ({codec.flit_bits}-bit flits):")
    for w in flits:
        print(f"  0b{w:0{codec.flit_bits}b}")
    hdr = codec.decode_flit(flits[0]).header
    print(f"decoded: dst={hdr.dst} src={hdr.src} len={hdr.length} "
          f"traffic={codec.traffic_name(hdr.traffic)} "
          f"bitstring=0b{hdr.bitstring:b}")


if __name__ == "__main__":
    main()
