#!/usr/bin/env python
"""MPSoC cache-coherence scenario: the paper's motivating workload.

"Broadcasts are a key mechanism to maintain cache coherency in MPSoCs.
As the number of cores grows, cache synchronization will become a
bottleneck ... unless the NoC has an efficient broadcast mechanism."
(Sec. 2.2)

The model: N cores run a shared-memory workload.  Each write to a shared
line triggers an *invalidate broadcast* to all other caches; reads and
private writes travel as ordinary unicasts to the home memory node.  We
measure the end-to-end invalidation time (write issued -> every remote
cache invalidated), which bounds the write stall in a sequentially
consistent system -- on Quarc and Spidergon with identical workloads.

The two traffic classes carry different message sizes, so this workload
cannot be expressed as a single ``TrafficMix``; instead the custom
generator drives the network through the same pluggable
:class:`~repro.sim.backend.SimBackend` engines the session layer uses
(``make_backend("active", ...)`` here -- identical results to the
reference loop, measurably faster).

Run:  python examples/cache_coherence.py [n_cores]
"""

import sys

from repro import Packet, UNICAST, build_network
from repro.core.collector import LatencyCollector
from repro.sim.backend import make_backend
from repro.sim.rng import RngStreams

INVALIDATE_SIZE = 2    # address-only message: header + one payload flit
DATA_SIZE = 10         # cache-line fill: header + 8 data flits + tail
CYCLES = 6_000
WARMUP = 1_500
READ_RATE = 0.012      # line fills per core per cycle
WRITE_SHARED_RATE = 0.002   # shared-line writes (-> invalidate broadcast)


def run(kind: str, n: int, seed: int = 2026, cycles: int = CYCLES,
        warmup: int = WARMUP) -> dict:
    collector = LatencyCollector(warmup=warmup)
    net, _ = build_network(kind, n, collector=collector)
    backend = make_backend("active", net)
    streams = RngStreams(seed)   # same seed => identical workload per NoC
    rngs = [streams.get(f"core{i}") for i in range(n)]

    for t in range(cycles):
        for core in range(n):
            r = rngs[core].random()
            if r < WRITE_SHARED_RATE:
                # shared write: invalidate everyone else's copy
                net.adapters[core].send_broadcast(INVALIDATE_SIZE, t)
            elif r < WRITE_SHARED_RATE + READ_RATE:
                # read miss: fetch the line from its home node
                home = rngs[core].randrange(n - 1)
                home = home if home < core else home + 1
                net.adapters[core].send(
                    Packet(core, home, DATA_SIZE, UNICAST), t)
        backend.step(t)

    return {
        "kind": kind,
        "fills": collector.delivered_unicast,
        "fill_latency": collector.unicast_mean,
        "invalidations": collector.completed_collective,
        "invalidate_latency": collector.collective_mean,
    }


def main(n: int = 16, cycles: int = CYCLES, warmup: int = WARMUP) -> None:
    print(f"cache-coherence workload on {n} cores "
          f"({READ_RATE:.3f} fills + {WRITE_SHARED_RATE:.3f} shared "
          f"writes per core per cycle)\n")
    results = [run(kind, n, cycles=cycles, warmup=warmup)
               for kind in ("quarc", "spidergon")]
    hdr = (f"{'NoC':<10} {'line fills':>10} {'fill lat':>9} "
           f"{'invalidations':>11} {'inval lat':>10}")
    print(hdr)
    print("-" * len(hdr))
    for r in results:
        print(f"{r['kind']:<10} {r['fills']:>10} "
              f"{r['fill_latency']:>8.1f}c {r['invalidations']:>11} "
              f"{r['invalidate_latency']:>9.1f}c")
    q, s = results
    if q["invalidate_latency"] > 0:
        print(f"\nwrite-invalidation completes "
              f"{s['invalidate_latency'] / q['invalidate_latency']:.1f}x "
              f"faster on the Quarc -- the paper's cache-sync argument.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
