#!/usr/bin/env python
"""MPSoC cache-coherence scenario: the paper's motivating workload.

"Broadcasts are a key mechanism to maintain cache coherency in MPSoCs.
As the number of cores grows, cache synchronization will become a
bottleneck ... unless the NoC has an efficient broadcast mechanism."
(Sec. 2.2)

The model: N cores run a shared-memory workload.  Each write to a shared
line triggers an *invalidate broadcast* to all other caches; reads and
private writes travel as ordinary unicasts to the home memory node.  We
measure the end-to-end invalidation time (write issued -> every remote
cache invalidated), which bounds the write stall in a sequentially
consistent system -- on Quarc and Spidergon with identical workloads.

The two traffic classes carry different message sizes; since the
multi-class refactor that is exactly what a ``TrafficMix`` expresses, so
this example is nothing but the registered ``cache_coherence``
application workload run through a ``SimulationSession`` -- the same
entry point the CLI reaches with::

    repro run --workload cache_coherence:storms=true --backend active

The per-class numbers (fill latency vs invalidation latency) come from
the summary's ``classes`` breakdown.

Run:  python examples/cache_coherence.py [n_cores]
"""

import sys

from repro.sim.session import RunConfig, SimulationSession
from repro.traffic.workload import WorkloadSpec

INVALIDATE_SIZE = 2    # address-only message: header + one payload flit
DATA_SIZE = 10         # cache-line fill: header + 8 data flits + tail
CYCLES = 6_000
WARMUP = 1_500
READ_RATE = 0.012      # line fills per core per cycle
WRITE_SHARED_RATE = 0.002   # shared-line writes (-> invalidate broadcast)

WORKLOAD = (f"cache_coherence:read_rate={READ_RATE},"
            f"write_rate={WRITE_SHARED_RATE},"
            f"data_len={DATA_SIZE},inv_len={INVALIDATE_SIZE}")


def run(kind: str, n: int, seed: int = 2026, cycles: int = CYCLES,
        warmup: int = WARMUP) -> dict:
    spec = WorkloadSpec(kind=kind, n=n, msg_len=DATA_SIZE, beta=0.0,
                        rate=1.0, cycles=cycles, warmup=warmup, seed=seed,
                        workload=WORKLOAD)
    # same seed => identical workload per NoC (common random numbers)
    session = SimulationSession(RunConfig(spec=spec, backend="active"))
    summary = session.run()
    session.backend.detach()
    classes = summary.per_class
    return {
        "kind": kind,
        "fills": classes["fill"]["delivered"],
        "fill_latency": classes["fill"]["latency_mean"],
        "invalidations": classes["inv"]["delivered"],
        "invalidate_latency": classes["inv"]["latency_mean"],
    }


def main(n: int = 16, cycles: int = CYCLES, warmup: int = WARMUP) -> None:
    print(f"cache-coherence workload on {n} cores "
          f"({READ_RATE:.3f} fills + {WRITE_SHARED_RATE:.3f} shared "
          f"writes per core per cycle)\n")
    results = [run(kind, n, cycles=cycles, warmup=warmup)
               for kind in ("quarc", "spidergon")]
    hdr = (f"{'NoC':<10} {'line fills':>10} {'fill lat':>9} "
           f"{'invalidations':>11} {'inval lat':>10}")
    print(hdr)
    print("-" * len(hdr))
    for r in results:
        print(f"{r['kind']:<10} {r['fills']:>10} "
              f"{r['fill_latency']:>8.1f}c {r['invalidations']:>11} "
              f"{r['invalidate_latency']:>9.1f}c")
    q, s = results
    if q["invalidate_latency"] > 0:
        print(f"\nwrite-invalidation completes "
              f"{s['invalidate_latency'] / q['invalidate_latency']:.1f}x "
              f"faster on the Quarc -- the paper's cache-sync argument.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
